package scenario

// Online admission control: RunOnline's inline rendition of the
// training-data defenses. Where UseRONI scrubs each week's candidates
// in one week-end batch pass, Config.Admission vets every candidate
// as it arrives through an engine.Guarded pipeline —
// TokenFloodGate → budgeted IncrementalRONI → Quarantine — and runs
// the swap-time defenses (dynamic-threshold refit, quarantine review,
// calibration-pool refresh) through the guard's publish hooks at
// every snapshot swap.

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/engine"
	"repro/internal/mail"
	"repro/internal/stats"
	"repro/internal/tokenize"
)

// AdmissionConfig parameterizes RunOnline's inline vetting pipeline.
// The zero value of every field selects a sensible default, so
// &AdmissionConfig{} is a complete policy.
type AdmissionConfig struct {
	// RONI is the impact-probe parameterization (zero selects the
	// paper's §5.1 numbers via core.DefaultRONIConfig).
	RONI core.RONIConfig
	// BudgetPerMessage credits the probe bucket per arrival (<= 0
	// selects 0.05 — one probe per twenty messages, amortized).
	BudgetPerMessage float64
	// ProbeBurst caps unspent budget and seeds the bucket (<= 0
	// selects 8).
	ProbeBurst float64
	// SwapGrant credits extra probe budget at each snapshot swap so
	// the quarantine review has probes to spend (< 0 disables; 0
	// selects 4).
	SwapGrant float64
	// FloodGateMaxDistinct is the structural pre-filter's
	// distinct-token reject bound (<= 0 selects 1024).
	FloodGateMaxDistinct int
	// QuarantineCapacity bounds the deferred buffer (0 is unbounded).
	QuarantineCapacity int
	// QuarantineMaxReviews drops a candidate still undecided after
	// this many swap reviews (<= 0 selects 2).
	QuarantineMaxReviews int
	// RefitUtility is the dynamic-threshold g-target refit at every
	// publish (§5.2). Zero selects 0.10; a negative value disables the
	// refit entirely.
	RefitUtility float64
	// RefitSample is the calibration-sample size drawn from the
	// trusted store at each refit (<= 0 selects 200).
	RefitSample int
}

// swapGrant resolves the SwapGrant default (0 selects 4, negative
// disables).
func (c AdmissionConfig) swapGrant() float64 {
	if c.SwapGrant < 0 {
		return 0
	}
	if c.SwapGrant == 0 {
		return 4
	}
	return c.SwapGrant
}

// refitUtility resolves the RefitUtility default (0 selects 0.10,
// negative disables).
func (c AdmissionConfig) refitUtility() float64 {
	if c.RefitUtility < 0 {
		return 0
	}
	if c.RefitUtility == 0 {
		return 0.10
	}
	return c.RefitUtility
}

// refitSample resolves the RefitSample default.
func (c AdmissionConfig) refitSample() int {
	if c.RefitSample <= 0 {
		return 200
	}
	return c.RefitSample
}

// Validate checks the configuration.
func (c AdmissionConfig) Validate() error {
	roni := c.RONI
	if roni == (core.RONIConfig{}) {
		roni = core.DefaultRONIConfig()
	}
	if err := roni.Validate(); err != nil {
		return err
	}
	if u := c.refitUtility(); u > 0 {
		if err := (core.DynamicThreshold{Utility: u}).Validate(); err != nil {
			return err
		}
	}
	switch {
	case c.QuarantineCapacity < 0:
		return fmt.Errorf("scenario: QuarantineCapacity %d", c.QuarantineCapacity)
	case c.FloodGateMaxDistinct < 0:
		return fmt.Errorf("scenario: FloodGateMaxDistinct %d", c.FloodGateMaxDistinct)
	}
	return nil
}

// AdmissionWeek is one week's inline-vetting outcome, with every
// decision attributed organic vs. attack by message identity — the
// comparison row against the batch defense's AttackRejected /
// OrganicRejected columns.
type AdmissionWeek struct {
	// Admission decisions over the week's arrivals.
	OrganicAdmitted    int
	OrganicQuarantined int
	OrganicRejected    int
	AttackAdmitted     int
	AttackQuarantined  int
	AttackRejected     int
	// Probes is the number of impact measurements the incremental
	// admitter actually ran this week (including swap-review probes).
	Probes int
	// BatchProbeEquivalent is what one week-end batch RONI pass over
	// the same candidates would have spent: one probe per distinct
	// (message, label) candidate.
	BatchProbeEquivalent int
	// Released and Dropped are the quarantine-review outcomes at this
	// week's snapshot swaps.
	Released int
	Dropped  int
	// Theta0 and Theta1 are the serving cutoffs after this week's last
	// dynamic-threshold refit (zero before the first refit or when the
	// refit is disabled).
	Theta0 float64
	Theta1 float64
}

// onlineAdmission bundles the concrete pipeline RunOnline wires into
// its guard: the chain, the quarantine, the publish hooks, and the
// mutable swap-time state those hooks feed back into the weekly
// reports.
type onlineAdmission struct {
	cfg      AdmissionConfig
	roni     *admission.IncrementalRONI
	gate     *admission.TokenFloodGate
	chain    *admission.Chain
	buffer   *admission.Quarantine
	guardCfg engine.GuardedConfig

	// mu orders hook state against the delivery loop. The scenario's
	// publish points are fixed in simulated time, so the lock is for
	// safety (GuardedSharded may run hooks from shard goroutines), not
	// for determinism — determinism comes from the fixed swap points.
	mu sync.Mutex
	// theta0/theta1 are the cutoffs of the most recent refit.
	theta0, theta1 float64
	// released accumulates quarantine-review releases since the last
	// week-end drain; they join the kept mail for the next retrain.
	released *corpus.Corpus
	// releasedN/droppedN count review outcomes since the last drain.
	releasedN, droppedN int
}

// newOnlineAdmission builds the pipeline over the deployment's
// trusted store. The refit and review hooks close over store (which
// RunOnline grows in place week by week) and draw their randomness
// from ar, so the trace stays deterministic: hooks fire at fixed
// points in simulated time.
func newOnlineAdmission(cfg AdmissionConfig, backend engine.Backend, store *corpus.Corpus, spamPrevalence float64, ar *stats.RNG) (*onlineAdmission, error) {
	roniCfg := admission.IncrementalRONIConfig{
		RONI:             cfg.RONI,
		BudgetPerMessage: cfg.BudgetPerMessage,
		Burst:            cfg.ProbeBurst,
	}
	roni, err := admission.NewIncrementalRONI(roniCfg, store, backend.New, ar.Split("pool-0"))
	if err != nil {
		return nil, fmt.Errorf("scenario: admission: %w", err)
	}
	gate := admission.NewTokenFloodGate(admission.FloodGateConfig{MaxDistinct: cfg.FloodGateMaxDistinct})
	a := &onlineAdmission{
		cfg:      cfg,
		roni:     roni,
		gate:     gate,
		chain:    admission.NewChain(gate, roni),
		buffer:   admission.NewQuarantine(admission.QuarantineConfig{Capacity: cfg.QuarantineCapacity, MaxReviews: cfg.QuarantineMaxReviews}),
		released: &corpus.Corpus{},
	}

	// Swap-time defenses, in hook order: the refit mutates each
	// replacement before it serves; the post-publish review refreshes
	// the calibration pool from the grown store, grants the review
	// budget, and re-vets the quarantine.
	var refits, reviews int
	if u := cfg.refitUtility(); u > 0 {
		d := core.DynamicThreshold{Utility: u}
		a.guardCfg.PrePublish = append(a.guardCfg.PrePublish, func(next engine.Classifier) error {
			a.mu.Lock()
			defer a.mu.Unlock()
			n := cfg.refitSample()
			if n > store.Len() {
				n = store.Len()
			}
			calib, err := store.SampleInbox(ar.Split(fmt.Sprintf("refit-%d", refits)), n, spamPrevalence)
			if err != nil {
				return err
			}
			refits++
			t0, t1, err := d.Refit(next, calib)
			if err != nil {
				return err
			}
			a.theta0, a.theta1 = t0, t1
			return nil
		})
	}
	a.guardCfg.PostPublish = append(a.guardCfg.PostPublish, func() {
		a.mu.Lock()
		defer a.mu.Unlock()
		// The pool rolls forward: impact is measured against what the
		// filter now trusts. A refresh failure keeps the old pool — the
		// store only grows, so the sample that built it stays valid.
		_ = a.roni.Refresh(store, ar.Split(fmt.Sprintf("pool-%d", reviews+1)))
		reviews++
		a.roni.Grant(a.cfg.swapGrant())
		released, dropped := a.buffer.Review(func(m *mail.Message, ts *tokenize.TokenStream, spam bool) admission.Decision {
			return a.chain.Admit(context.Background(), m, ts, spam)
		})
		for _, h := range released {
			a.released.Add(h.Msg, h.Spam)
		}
		a.releasedN += len(released)
		a.droppedN += dropped
	})
	a.guardCfg.Quarantine = a.buffer
	return a, nil
}

// countWeek attributes one decision into the week's report.
func (a *onlineAdmission) countWeek(w *AdmissionWeek, d engine.AdmitDecision, attack bool) {
	switch d.Verdict {
	case engine.AdmitAccept:
		if attack {
			w.AttackAdmitted++
		} else {
			w.OrganicAdmitted++
		}
	case engine.AdmitQuarantine:
		if attack {
			w.AttackQuarantined++
		} else {
			w.OrganicQuarantined++
		}
	default:
		if attack {
			w.AttackRejected++
		} else {
			w.OrganicRejected++
		}
	}
}

// drainWeek moves the swap-time accumulators into the week's report
// and returns the released mail (which joins the kept corpus for the
// next retrain).
func (a *onlineAdmission) drainWeek(w *AdmissionWeek) *corpus.Corpus {
	a.mu.Lock()
	defer a.mu.Unlock()
	w.Released = a.releasedN
	w.Dropped = a.droppedN
	w.Theta0, w.Theta1 = a.theta0, a.theta1
	released := a.released
	a.released = &corpus.Corpus{}
	a.releasedN, a.droppedN = 0, 0
	return released
}

// distinctCandidates counts the distinct (message, label) pairs of a
// weekly corpus — the probes one memoized week-end batch RONI pass
// would spend on it.
func distinctCandidates(c *corpus.Corpus) int {
	type key struct {
		msg  *mail.Message
		spam bool
	}
	seen := make(map[key]struct{}, c.Len())
	for _, e := range c.Examples {
		seen[key{e.Msg, e.Spam}] = struct{}{}
	}
	return len(seen)
}

// feedbackAttacker returns the attack's dose-adaptation capability, or
// an error naming the attack (shared by Validate and the online loops
// so the checks cannot drift).
func feedbackAttacker(a core.Attacker) (core.FeedbackAttacker, error) {
	f, ok := a.(core.FeedbackAttacker)
	if !ok {
		return nil, fmt.Errorf("scenario: attack %q cannot adapt its dose", a.Name())
	}
	return f, nil
}

// attackDose returns the fraction of the weekly volume this week's
// attack claims: the configured fraction, scaled by the adaptive
// attacker's learned multiplier when Config.AttackAdaptive is set.
func attackDose(cfg Config) float64 {
	if cfg.AttackAdaptive {
		if fa, err := feedbackAttacker(cfg.Attack); err == nil {
			return fa.Dose(cfg.AttackFraction)
		}
	}
	return cfg.AttackFraction
}

// observeAttackFeedback reports the week's poison fate to an adaptive
// attacker: accepted is what entered (or will enter) training —
// arrivals minus rejections and quarantines.
func observeAttackFeedback(cfg Config, arrived, rejectedOrHeld int) {
	if !cfg.AttackAdaptive || arrived == 0 {
		return
	}
	if fa, err := feedbackAttacker(cfg.Attack); err == nil {
		fa.ObserveFeedback(arrived, arrived-rejectedOrHeld)
	}
}

// renderAdmissionTable appends the per-week inline-vetting trace to an
// online render.
func renderAdmissionTable(b *strings.Builder, r *OnlineResult) {
	t := newTable("week", "adm o/a", "quar o/a", "rej o/a", "probes", "batch-eq", "rel", "drop", "θ0", "θ1")
	totalProbes, maxBatch := 0, 0
	for _, w := range r.Weeks {
		a := w.Admission
		if a == nil {
			continue
		}
		totalProbes += a.Probes
		if a.BatchProbeEquivalent > maxBatch {
			maxBatch = a.BatchProbeEquivalent
		}
		t.addRow(
			fmt.Sprintf("%d", w.Week),
			fmt.Sprintf("%d/%d", a.OrganicAdmitted, a.AttackAdmitted),
			fmt.Sprintf("%d/%d", a.OrganicQuarantined, a.AttackQuarantined),
			fmt.Sprintf("%d/%d", a.OrganicRejected, a.AttackRejected),
			fmt.Sprintf("%d", a.Probes),
			fmt.Sprintf("%d", a.BatchProbeEquivalent),
			fmt.Sprintf("%d", a.Released),
			fmt.Sprintf("%d", a.Dropped),
			fmt.Sprintf("%.2f", a.Theta0),
			fmt.Sprintf("%.2f", a.Theta1))
	}
	b.WriteString("inline admission (o/a = organic/attack; batch-eq = probes one week-end batch RONI pass would spend):\n")
	b.WriteString(t.String())
	fmt.Fprintf(b, "total probes %d over %d weeks vs. %d for a single week-end batch pass\n",
		totalProbes, len(r.Weeks), maxBatch)
}
