package scenario

// Tests for the sharded (hash-by-recipient multi-engine) online
// deployment mode.

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/lexicon"
	"repro/internal/stats"
)

// shardedCfg is smallCfg served by 2 shards over 4 users.
func shardedCfg() Config {
	cfg := smallCfg()
	cfg.Shards = 2
	cfg.Recipients = 4
	return cfg
}

func TestShardedValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Shards = -1 },
		func(c *Config) { c.Recipients = -1 },
		func(c *Config) { c.Shards = 0; c.Recipients = 3 },
		func(c *Config) { c.Shards = 1; c.AttackRecipient = RecipientAddress(0) },
	}
	for i, mutate := range bad {
		c := shardedCfg()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d validated", i)
		}
	}
	if err := shardedCfg().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigTargetShard(t *testing.T) {
	cfg := shardedCfg()
	if got := cfg.TargetShard(); got != -1 {
		t.Errorf("untargeted TargetShard = %d, want -1", got)
	}
	cfg.AttackRecipient = RecipientAddress(0)
	got := cfg.TargetShard()
	if got < 0 || got >= cfg.Shards {
		t.Errorf("TargetShard = %d outside [0, %d)", got, cfg.Shards)
	}
}

func TestShardedOnlineCleanDeployment(t *testing.T) {
	g := testGen(t)
	cfg := shardedCfg()
	res, err := RunOnline(g, cfg, stats.NewRNG(31))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Weeks) != cfg.Weeks {
		t.Fatalf("%d weeks", len(res.Weeks))
	}
	for _, w := range res.Weeks {
		if len(w.ByShard) != cfg.Shards || len(w.ShardGenerations) != cfg.Shards {
			t.Fatalf("week %d: per-shard breakdown has %d/%d entries, want %d",
				w.Week, len(w.ByShard), len(w.ShardGenerations), cfg.Shards)
		}
		// The per-shard confusions partition the combined one.
		var sum int
		for sh, conf := range w.ByShard {
			sum += conf.NumHam() + conf.NumSpam()
			if conf.NumHam()+conf.NumSpam() == 0 {
				t.Errorf("week %d: shard %d delivered nothing (population not spread)", w.Week, sh)
			}
		}
		if total := w.Delivered.NumHam() + w.Delivered.NumSpam(); sum != total || total != cfg.MessagesPerWeek {
			t.Errorf("week %d: shard verdicts %d, combined %d, want %d", w.Week, sum, total, cfg.MessagesPerWeek)
		}
		if loss := w.Delivered.HamMisclassifiedRate(); loss > 0.1 {
			t.Errorf("week %d: clean sharded deployment loses %v of ham at delivery", w.Week, loss)
		}
		// One swap per completed week on every shard, as in the
		// single-engine deployment.
		for sh, gen := range w.ShardGenerations {
			if gen != uint64(w.Week) {
				t.Errorf("week %d: shard %d generation %d, want %d", w.Week, sh, gen, w.Week)
			}
		}
		if w.Generation != uint64(w.Week) {
			t.Errorf("week %d: combined generation %d, want %d", w.Week, w.Generation, w.Week)
		}
	}
	want := cfg.InitialMailStore + cfg.Weeks*cfg.MessagesPerWeek
	if got := res.Weeks[len(res.Weeks)-1].MailStoreSize; got != want {
		t.Errorf("final store = %d, want %d", got, want)
	}
	if !strings.Contains(res.Render(), "per-shard at-delivery ham loss") {
		t.Error("render missing the per-shard table")
	}
}

func TestShardedTargetedPoisonIsolatesDamage(t *testing.T) {
	// All attack mail is addressed to user 0, so only user 0's shard
	// trains on the poison: its at-delivery ham loss must collapse
	// while every other shard keeps serving clean verdicts — the
	// blast-radius containment sharding buys, and the sharded
	// rendition of the paper's §4.3 targeted setting.
	g := testGen(t)
	cfg := shardedCfg()
	cfg.Attack = core.NewDictionaryAttack(lexicon.Optimal(g.Universe()))
	cfg.AttackRecipient = RecipientAddress(0)
	res, err := RunOnline(g, cfg, stats.NewRNG(32))
	if err != nil {
		t.Fatal(err)
	}
	target := cfg.TargetShard()
	last := res.Weeks[len(res.Weeks)-1]
	if last.AttackArrived == 0 {
		t.Fatal("no attack arrivals recorded")
	}
	targetLoss := last.ByShard[target].HamMisclassifiedRate()
	if targetLoss < 0.3 {
		t.Errorf("target shard %d final ham loss only %v despite concentrated poison", target, targetLoss)
	}
	for sh, conf := range last.ByShard {
		if sh == target {
			continue
		}
		if loss := conf.HamMisclassifiedRate(); loss > 0.1 {
			t.Errorf("shard %d suffered %v collateral ham loss from a shard-%d-targeted attack",
				sh, loss, target)
		}
	}
	if !strings.Contains(res.Render(), "aimed at "+cfg.AttackRecipient) {
		t.Error("render does not name the targeted recipient")
	}
}

func TestShardedSpreadAttackHitsEveryShard(t *testing.T) {
	// Untargeted attack mail spreads over the population like organic
	// mail, so every shard's store is poisoned — the contrast case to
	// the targeted run above.
	g := testGen(t)
	cfg := shardedCfg()
	cfg.Attack = core.NewDictionaryAttack(lexicon.Optimal(g.Universe()))
	res, err := RunOnline(g, cfg, stats.NewRNG(33))
	if err != nil {
		t.Fatal(err)
	}
	last := res.Weeks[len(res.Weeks)-1]
	for sh, conf := range last.ByShard {
		if loss := conf.HamMisclassifiedRate(); loss < 0.2 {
			t.Errorf("shard %d final ham loss %v under a spread attack; expected broad damage", sh, loss)
		}
	}
}

func TestShardedIncrementalMatchesPeriodic(t *testing.T) {
	// Per-shard clone-and-extend must reproduce the per-shard full
	// rebuild verdict for verdict, as in the single-engine mode.
	g := testGen(t)
	cfg := shardedCfg()
	cfg.Weeks = 3
	cfg.Attack = core.NewDictionaryAttack(lexicon.Optimal(g.Universe()))

	periodic := cfg
	periodic.Retraining = RetrainPeriodic
	a, err := RunOnline(g, periodic, stats.NewRNG(34))
	if err != nil {
		t.Fatal(err)
	}
	incremental := cfg
	incremental.Retraining = RetrainIncremental
	b, err := RunOnline(g, incremental, stats.NewRNG(34))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Weeks {
		if !reflect.DeepEqual(a.Weeks[i], b.Weeks[i]) {
			t.Fatalf("week %d differs: periodic %+v vs incremental %+v", i+1, a.Weeks[i], b.Weeks[i])
		}
	}
}

func TestShardedDeterminism(t *testing.T) {
	// The sharded trace — including the concurrently built per-shard
	// retrains and the stamped recipients — must not leak goroutine
	// scheduling into the results.
	g := testGen(t)
	cfg := shardedCfg()
	cfg.Attack = core.NewDictionaryAttack(lexicon.Optimal(g.Universe()))
	cfg.AttackRecipient = RecipientAddress(1)
	cfg.UseRONI = true
	cfg.RetrainLag = 17
	a, err := RunOnline(g, cfg, stats.NewRNG(35))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOnline(g, cfg, stats.NewRNG(35))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Weeks {
		if !reflect.DeepEqual(a.Weeks[i], b.Weeks[i]) {
			t.Fatalf("week %d differs across identical runs: %+v vs %+v", i+1, a.Weeks[i], b.Weeks[i])
		}
	}
}
