package scenario

// Tests for the online per-message deployment mode and the
// identity-keyed rejection attribution.

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/lexicon"
	"repro/internal/mail"
	"repro/internal/stats"
)

// rejectBodies is a deterministic rejecter stub: it rejects any
// message whose body contains one of its markers.
type rejectBodies []string

func (r rejectBodies) ShouldReject(q *mail.Message, qSpam bool) bool {
	for _, marker := range r {
		if strings.Contains(q.Body, marker) {
			return true
		}
	}
	return false
}

func TestScrubWeekAttributesRejectionsByIdentity(t *testing.T) {
	// Two attack chunks and an organic ham message whose body is
	// byte-identical to the first chunk (a user quoting the attack
	// email back, say). Body-equality attribution — the old bug —
	// would count the organic collision as attack and, having tracked
	// only one payload body, miscount the second chunk as organic.
	chunkA := &mail.Message{Body: "attack chunk alpha words\n"}
	chunkB := &mail.Message{Body: "attack chunk bravo words\n"}
	collision := &mail.Message{Body: chunkA.Body} // distinct identity, same body
	organic := &mail.Message{Body: "perfectly normal newsletter\n"}

	weekly := &corpus.Corpus{}
	weekly.Add(chunkA, true)
	weekly.Add(chunkB, true)
	weekly.Add(chunkA, true) // replicated copy of the same payload
	weekly.Add(collision, false)
	weekly.Add(organic, false)
	attackSet := map[*mail.Message]bool{chunkA: true, chunkB: true}

	kept, attackRej, organicRej := scrubWeek(rejectBodies{"attack chunk"}, weekly, attackSet)
	if attackRej != 3 {
		t.Errorf("AttackRejected = %d, want 3 (two chunkA copies + chunkB)", attackRej)
	}
	if organicRej != 1 {
		t.Errorf("OrganicRejected = %d, want 1 (the colliding organic message)", organicRej)
	}
	if kept.Len() != 1 || kept.Examples[0].Msg != organic {
		t.Errorf("kept %d messages, want just the organic newsletter", kept.Len())
	}
}

func TestScrubWeekMemoizesByIdentity(t *testing.T) {
	// The replicated attack payload must be measured once, not once
	// per copy.
	var calls int
	attack := &mail.Message{Body: "payload\n"}
	weekly := &corpus.Corpus{}
	for i := 0; i < 50; i++ {
		weekly.Add(attack, true)
	}
	_, attackRej, _ := scrubWeek(countingRejecter{calls: &calls}, weekly, map[*mail.Message]bool{attack: true})
	if calls != 1 {
		t.Errorf("ShouldReject called %d times for 50 identical copies, want 1", calls)
	}
	if attackRej != 50 {
		t.Errorf("AttackRejected = %d, want 50", attackRej)
	}
}

type countingRejecter struct{ calls *int }

func (c countingRejecter) ShouldReject(q *mail.Message, qSpam bool) bool {
	*c.calls++
	return true
}

func TestChunkedAttackScenarioSplitsRejectionsCorrectly(t *testing.T) {
	// A chunked dictionary attack under RONI: every rejected injection
	// must be attributed to the attack — across all chunks, which the
	// old single-body tracking could not represent — and organic
	// rejections must stay rare.
	g := testGen(t)
	cfg := smallCfg()
	cfg.Attack = core.NewDictionaryAttack(lexicon.Optimal(g.Universe()))
	cfg.AttackChunks = 3
	cfg.UseRONI = true
	res, err := Run(g, cfg, stats.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	perWeek := core.AttackSize(cfg.AttackFraction, cfg.MessagesPerWeek)
	perChunk := (perWeek + cfg.AttackChunks - 1) / cfg.AttackChunks
	for _, w := range res.Weeks {
		if w.AttackArrived == 0 {
			continue
		}
		if w.AttackArrived != perWeek {
			t.Errorf("week %d: %d attack arrivals, want %d", w.Week, w.AttackArrived, perWeek)
		}
		if w.AttackRejected > w.AttackArrived {
			t.Errorf("week %d: rejected %d of %d attack arrivals", w.Week, w.AttackRejected, w.AttackArrived)
		}
	}
	// In the first attack week the store is still clean, so RONI
	// reliably rejects the chunks; rejections spanning more than one
	// chunk prove attribution is not keyed to a single payload body.
	// (Later weeks can legitimately slip under the impact threshold as
	// trial baselines shift, so the per-week bound is asserted only
	// here.)
	first := res.Weeks[cfg.AttackStartWeek-1]
	if first.AttackRejected <= perChunk {
		t.Errorf("first attack week: only %d attack rejections (≤ one chunk's %d copies); multi-chunk attribution broken",
			first.AttackRejected, perChunk)
	}
	organic := 0
	for _, w := range res.Weeks {
		organic += w.OrganicRejected
	}
	if organic > cfg.Weeks*cfg.MessagesPerWeek/20 {
		t.Errorf("RONI rejected %d organic messages", organic)
	}
	if !strings.Contains(res.Render(), "in 3 chunks") {
		t.Error("render does not describe the chunked attack")
	}
}

func TestChunkingRequiresCapableAttacker(t *testing.T) {
	cfg := smallCfg()
	cfg.Attack = noChunkAttack{}
	cfg.AttackChunks = 4
	if err := cfg.Validate(); err == nil {
		t.Error("chunked config validated with a non-chunkable attacker")
	}
	cfg.AttackChunks = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative AttackChunks validated")
	}
}

// noChunkAttack is an Attacker without the ChunkedAttacker capability.
type noChunkAttack struct{}

func (noChunkAttack) Name() string        { return "no-chunk" }
func (noChunkAttack) Taxonomy() core.Taxonomy {
	return core.Taxonomy{Influence: core.Causative, Violation: core.Availability, Specificity: core.Indiscriminate}
}
func (noChunkAttack) BuildAttack(r *stats.RNG) *mail.Message {
	return &mail.Message{Body: "attack\n"}
}

func TestOnlineValidation(t *testing.T) {
	cfg := smallCfg()
	cfg.RetrainLag = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative RetrainLag validated")
	}
	cfg = smallCfg()
	cfg.Retraining = RetrainMode(9)
	if err := cfg.Validate(); err == nil {
		t.Error("unknown RetrainMode validated")
	}
	g := testGen(t)
	bad := smallCfg()
	bad.Backend = "nonesuch"
	if _, err := RunOnline(g, bad, stats.NewRNG(1)); err == nil {
		t.Error("RunOnline accepted unknown backend")
	}
}

func TestOnlineCleanDeployment(t *testing.T) {
	g := testGen(t)
	cfg := smallCfg()
	res, err := RunOnline(g, cfg, stats.NewRNG(21))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Weeks) != cfg.Weeks {
		t.Fatalf("%d weeks", len(res.Weeks))
	}
	for _, w := range res.Weeks {
		if loss := w.Delivered.HamMisclassifiedRate(); loss > 0.1 {
			t.Errorf("week %d: clean deployment loses %v of ham at delivery", w.Week, loss)
		}
		// One snapshot swap per completed week: the retrain kicked off
		// at week w's end publishes during week w+1.
		if w.Generation != uint64(w.Week) {
			t.Errorf("week %d: serving generation %d, want %d", w.Week, w.Generation, w.Week)
		}
		if got := w.Delivered.NumHam() + w.Delivered.NumSpam(); got != cfg.MessagesPerWeek {
			t.Errorf("week %d: %d delivered verdicts, want %d", w.Week, got, cfg.MessagesPerWeek)
		}
	}
	want := cfg.InitialMailStore + cfg.Weeks*cfg.MessagesPerWeek
	if got := res.Weeks[len(res.Weeks)-1].MailStoreSize; got != want {
		t.Errorf("final store = %d, want %d", got, want)
	}
}

func TestOnlineAttackDegradesDeliveredVerdicts(t *testing.T) {
	g := testGen(t)
	cfg := smallCfg()
	cfg.Attack = core.NewDictionaryAttack(lexicon.Optimal(g.Universe()))
	res, err := RunOnline(g, cfg, stats.NewRNG(22))
	if err != nil {
		t.Fatal(err)
	}
	// Before the attack enters training, users saw a working filter.
	pre := res.Weeks[cfg.AttackStartWeek-2]
	if loss := pre.Delivered.HamMisclassifiedRate(); loss > 0.1 {
		t.Errorf("pre-attack week loses %v of ham at delivery", loss)
	}
	// After the poisoned retrains go live, the verdicts users received
	// are badly degraded — the at-delivery view of the paper's attack.
	if res.FinalHamLoss() < 0.3 {
		t.Errorf("final at-delivery ham loss only %v despite sustained attack", res.FinalHamLoss())
	}
	last := res.Weeks[len(res.Weeks)-1]
	if last.AttackArrived == 0 {
		t.Error("no attack arrivals recorded")
	}
	for _, want := range []string{"Online deployment", "at-delivery", "gen"} {
		if !strings.Contains(res.Render(), want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestOnlineRetrainLagDelaysPoisonedSnapshot(t *testing.T) {
	// With lag 0 the poisoned retrain goes live at the week boundary;
	// with a lag beyond the weekly volume it goes live a whole week
	// later, so the first post-attack week's deliveries are still
	// judged by the clean snapshot.
	g := testGen(t)
	base := smallCfg()
	base.Attack = core.NewDictionaryAttack(lexicon.Optimal(g.Universe()))

	prompt := base
	prompt.RetrainLag = 0
	fast, err := RunOnline(g, prompt, stats.NewRNG(23))
	if err != nil {
		t.Fatal(err)
	}
	lagged := base
	lagged.RetrainLag = 10 * base.MessagesPerWeek
	slow, err := RunOnline(g, lagged, stats.NewRNG(23))
	if err != nil {
		t.Fatal(err)
	}
	// First week whose deliveries can see poison: AttackStartWeek+1.
	week := base.AttackStartWeek // index of week AttackStartWeek+1
	fastLoss := fast.Weeks[week].Delivered.HamMisclassifiedRate()
	slowLoss := slow.Weeks[week].Delivered.HamMisclassifiedRate()
	if fastLoss <= slowLoss {
		t.Errorf("week %d at-delivery ham loss: lag-0 %v not above lag-full %v — swap timing has no effect",
			week+1, fastLoss, slowLoss)
	}
	if slowLoss > 0.1 {
		t.Errorf("lagged deployment already poisoned in week %d (loss %v)", week+1, slowLoss)
	}
}

func TestOnlineIncrementalMatchesPeriodic(t *testing.T) {
	// Both backends train additive token counts, so cloning the
	// serving snapshot and learning only the week's kept mail must
	// produce exactly the filter a full rebuild from the store does —
	// week for week, verdict for verdict.
	for _, backend := range []string{"sbayes", "graham"} {
		t.Run(backend, func(t *testing.T) {
			g := testGen(t)
			cfg := smallCfg()
			cfg.Backend = backend
			cfg.Weeks = 3
			cfg.Attack = core.NewDictionaryAttack(lexicon.Optimal(g.Universe()))

			periodic := cfg
			periodic.Retraining = RetrainPeriodic
			a, err := RunOnline(g, periodic, stats.NewRNG(24))
			if err != nil {
				t.Fatal(err)
			}
			incremental := cfg
			incremental.Retraining = RetrainIncremental
			b, err := RunOnline(g, incremental, stats.NewRNG(24))
			if err != nil {
				t.Fatal(err)
			}
			for i := range a.Weeks {
				if !reflect.DeepEqual(a.Weeks[i], b.Weeks[i]) {
					t.Fatalf("week %d differs: periodic %+v vs incremental %+v", i+1, a.Weeks[i], b.Weeks[i])
				}
			}
		})
	}
}

func TestOnlineDeterminism(t *testing.T) {
	// The background rebuild joins at a fixed point in simulated time,
	// so the concurrent build must not leak scheduling into the trace.
	g := testGen(t)
	cfg := smallCfg()
	cfg.Attack = core.NewDictionaryAttack(lexicon.Optimal(g.Universe()))
	cfg.UseRONI = true
	cfg.RetrainLag = 17
	a, err := RunOnline(g, cfg, stats.NewRNG(25))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOnline(g, cfg, stats.NewRNG(25))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Weeks {
		if !reflect.DeepEqual(a.Weeks[i], b.Weeks[i]) {
			t.Fatalf("week %d differs across identical runs: %+v vs %+v", i+1, a.Weeks[i], b.Weeks[i])
		}
	}
}
