package scenario

// Sharded online deployment: the §2.1 organization again, but served
// by one logical filter partitioned across engine.Sharded shards
// routed by recipient hash. Every user's mail lands on — and trains —
// one shard, so an attacker who stamps their poison with a single
// victim's address (the sharded rendition of the paper's §4.3
// targeted setting) degrades only that shard, and the per-shard
// at-delivery confusions make the blast radius measurable: target
// damage in one column, collateral damage (ideally none) in the rest.

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/engine"
	"repro/internal/eval"
	"repro/internal/stats"
	"repro/internal/textgen"
)

// NumRecipients returns the effective sharded-mode user population
// size: Config.Recipients, defaulting to four users per shard.
func (c Config) NumRecipients() int {
	if c.Recipients > 0 {
		return c.Recipients
	}
	return 4 * c.Shards
}

// RecipientAddress returns sharded-mode user i's stamped address. The
// population is deterministic so traces are reproducible and configs
// can target a specific user by address (AttackRecipient).
func RecipientAddress(i int) string {
	return fmt.Sprintf("user%d@corp.example", i)
}

// TargetShard returns the shard index AttackRecipient's mail routes
// to, or -1 when the attack is untargeted or the config is unsharded.
func (c Config) TargetShard() int {
	if c.AttackRecipient == "" || c.Shards < 2 {
		return -1
	}
	return int(engine.AddressKey(c.AttackRecipient) % uint64(c.Shards))
}

// stampRecipients overwrites each message's To header with a uniform
// draw from the population. The generator synthesizes plausible To
// addresses already, but sharded mode needs a closed population so
// that each user accumulates a mail history on one shard.
func stampRecipients(c *corpus.Corpus, pop []string, wr *stats.RNG) {
	for _, ex := range c.Examples {
		ex.Msg.Header.Set("To", pop[wr.Intn(len(pop))])
	}
}

// runOnlineSharded is RunOnline's Shards > 1 path: deliveries flow
// through an engine.Sharded, each shard retrains on only its own
// slice of the kept mail, and reports carry per-shard confusions and
// generations. RONI, when enabled, scrubs candidates against the
// organization-wide trusted store before the kept mail is partitioned
// — the defense vets mail at the gateway, upstream of the shards.
func runOnlineSharded(g *textgen.Generator, cfg Config, r *stats.RNG, backend engine.Backend) (*OnlineResult, error) {
	nsh := cfg.Shards
	pop := make([]string, cfg.NumRecipients())
	for i := range pop {
		pop[i] = RecipientAddress(i)
	}

	// Bootstrap: one clean store, stamped with recipients, partitioned
	// into per-shard training corpora.
	br := r.Split("bootstrap")
	nSpam := int(float64(cfg.InitialMailStore)*cfg.SpamPrevalence + 0.5)
	store := g.Corpus(br, cfg.InitialMailStore-nSpam, nSpam)
	stampRecipients(store, pop, br)
	stores := engine.PartitionByKey(store, nsh, nil)
	clfs := make([]engine.Classifier, nsh)
	eval.Parallel(nsh, nsh, func(i int) {
		clfs[i] = eval.TrainBackend(backend.New, stores[i])
	})
	sh := engine.NewSharded(clfs, engine.ShardedConfig{Name: ShardedCheckpointName})
	res := &OnlineResult{Cfg: cfg}

	// Inline admission control, gateway edition: one pipeline vets all
	// mail upstream of the partition, each decision counted against
	// the shard the example routes to.
	var adm *onlineAdmission
	var guard *engine.GuardedSharded
	if cfg.Admission != nil {
		var err error
		adm, err = newOnlineAdmission(*cfg.Admission, backend, store, cfg.SpamPrevalence, r.Split("admission"))
		if err != nil {
			return nil, err
		}
		guard = engine.NewGuardedSharded(sh, adm.chain, adm.guardCfg)
	}
	ctx := context.Background()

	// Durable mode, fleet edition: every checkpoint persists all
	// shards (each under its own snapshot line, at its own
	// generation), and the bootstrap fleet is saved up front. The
	// save closure reads sh through the variable, so post-crash
	// checkpoints persist the resumed fleet.
	ckpt := newCheckpointer(cfg, func() error {
		_, err := sh.SaveAll(cfg.Checkpoints, cfg.BackendName())
		return err
	})
	if err := ckpt.saveNow(); err != nil {
		return nil, fmt.Errorf("scenario: bootstrap checkpoint: %w", err)
	}

	// pending carries the background rebuild of every shard across the
	// week boundary, exactly like the single-engine path.
	var pending chan []engine.Classifier
	for week := 1; week <= cfg.Weeks; week++ {
		wr := r.Split(fmt.Sprintf("week-%d", week))
		report := OnlineWeekReport{Week: week, ByShard: make([]eval.Confusion, nsh)}

		wSpam := int(float64(cfg.MessagesPerWeek)*cfg.SpamPrevalence + 0.5)
		weekly := g.Corpus(wr, cfg.MessagesPerWeek-wSpam, wSpam)
		stampRecipients(weekly, pop, wr)
		dose := attackDose(cfg)
		payloads, attackSet, arrived, err := injectAttack(cfg, week, dose, weekly, wr)
		if err != nil {
			return nil, err
		}
		report.AttackArrived = arrived
		if arrived > 0 {
			report.AttackDose = dose
		}
		// Attack mail is addressed after injection. Targeted: every
		// payload (shared across its replicated copies) carries the
		// victim's address, so the whole dose trains into one shard.
		// Untargeted: each injected copy is cloned and stamped with its
		// own recipient, spreading the poison across the population
		// like organic mail; the clones join the identity set so
		// rejection attribution still matches by pointer.
		if cfg.AttackRecipient != "" {
			for _, m := range payloads {
				m.Header.Set("To", cfg.AttackRecipient)
			}
		} else if len(payloads) > 0 {
			for i, ex := range weekly.Examples {
				if !attackSet[ex.Msg] {
					continue
				}
				clone := ex.Msg.Clone()
				clone.Header.Set("To", pop[wr.Intn(len(pop))])
				weekly.Examples[i].Msg = clone
				attackSet[clone] = true
			}
		}

		// publish swaps the background-built fleet in and checkpoints
		// it when the cadence is due (the fleet-wide SwapAll counts as
		// one publish). With a guard, every shard's replacement gets
		// the pre-publish threshold refit and the post-publish hook
		// (calibration refresh, quarantine review) runs once.
		publish := func() error {
			next := <-pending
			pending = nil
			if guard != nil {
				if _, err := guard.SwapAll(next); err != nil {
					return fmt.Errorf("scenario week %d: %w", week, err)
				}
			} else {
				sh.SwapAll(next)
			}
			saved, err := ckpt.published()
			if err != nil {
				return fmt.Errorf("scenario week %d: checkpoint: %w", week, err)
			}
			if saved {
				report.Checkpointed++
			}
			return nil
		}

		// Inline vetting accumulates the admitted candidates as they
		// arrive; without admission everything trains (modulo the
		// optional week-end batch scrub below).
		kept := weekly
		var admStartProbes uint64
		if adm != nil {
			report.Admission = &AdmissionWeek{}
			admStartProbes = adm.roni.Stats().Probes
			kept = &corpus.Corpus{}
		}

		// Deliver one message at a time through the sharded layer.
		for i, ex := range weekly.Examples {
			if pending != nil && i == cfg.RetrainLag {
				if err := publish(); err != nil {
					return nil, err
				}
			}
			verdict := sh.Classify(ex.Msg)
			// Attack mail is observed as true spam even when the
			// pseudospam variant trains it under a ham label.
			spam := ex.Spam || attackSet[ex.Msg]
			report.Delivered.Observe(spam, verdict.Label)
			report.ByShard[sh.ShardFor(ex.Msg)].Observe(spam, verdict.Label)
			if adm != nil {
				d := guard.Vet(ctx, ex.Msg, ex.Spam)
				adm.countWeek(report.Admission, d, attackSet[ex.Msg])
				if d.Verdict == engine.AdmitAccept {
					kept.Add(ex.Msg, ex.Spam)
				}
			}
		}
		if pending != nil {
			if err := publish(); err != nil {
				return nil, err
			}
		}

		// Week's end: scrub at the gateway (batch mode) or settle the
		// inline accounting, then grow the global store (the defenses'
		// trusted pool) and each shard's own slice.
		if cfg.UseRONI {
			defense, err := core.NewRONIBackend(cfg.RONI, store, backend.New, wr)
			if err != nil {
				return nil, fmt.Errorf("scenario week %d: %w", week, err)
			}
			kept, report.AttackRejected, report.OrganicRejected = scrubWeek(defense, weekly, attackSet)
		}
		if adm != nil {
			aw := report.Admission
			aw.Probes = int(adm.roni.Stats().Probes - admStartProbes)
			aw.BatchProbeEquivalent = distinctCandidates(weekly)
			kept.Append(adm.drainWeek(aw))
			report.AttackRejected = aw.AttackRejected
			report.OrganicRejected = aw.OrganicRejected
			observeAttackFeedback(cfg, arrived, aw.AttackRejected+aw.AttackQuarantined)
		} else {
			observeAttackFeedback(cfg, arrived, report.AttackRejected)
		}
		store.Append(kept)
		parts := sh.Partition(kept)
		for i := range stores {
			stores[i].Append(parts[i])
		}
		report.MailStoreSize = store.Len()
		report.ShardGenerations = make([]uint64, nsh)
		for i := 0; i < nsh; i++ {
			report.ShardGenerations[i] = sh.Shard(i).Generation()
		}
		report.Generation = minGeneration(report.ShardGenerations)

		// Simulated crash: the whole fleet process dies at this week's
		// end (the mail stores are disk and survive); the restart
		// resumes every shard from its own snapshot line's latest
		// valid generation, and the per-shard generations show which
		// shards' lines lagged the checkpoint cadence.
		if week == cfg.CrashAtWeek {
			resumed, gens, err := engine.ResumeAll(cfg.Checkpoints, nsh,
				engine.ShardedConfig{Name: ShardedCheckpointName})
			if err != nil {
				return nil, fmt.Errorf("scenario week %d: resume after simulated crash: %w", week, err)
			}
			sh = resumed
			if guard != nil {
				// Re-guard the restored fleet; the admission pipeline is
				// org state and survives with the mail store.
				guard = engine.NewGuardedSharded(sh, adm.chain, adm.guardCfg)
			}
			report.Resumed = true
			copy(report.ShardGenerations, gens)
			report.Generation = minGeneration(gens)
		}

		if week == cfg.Weeks {
			res.Weeks = append(res.Weeks, report)
			break
		}
		// Background rebuild of every shard from its own store (or its
		// own delta), published together at next week's lag point. The
		// builder works on clones, so the main loop's store growth never
		// races it.
		build := make(chan []engine.Classifier, 1)
		switch cfg.Retraining {
		case RetrainIncremental:
			cloners := make([]engine.Cloner, nsh)
			for i := 0; i < nsh; i++ {
				cur := sh.Shard(i).Classifier()
				cloner, ok := cur.(engine.Cloner)
				if !ok {
					return nil, fmt.Errorf("scenario: backend %q (%T) cannot retrain incrementally", cfg.BackendName(), cur)
				}
				cloners[i] = cloner
			}
			deltas := make([]*corpus.Corpus, nsh)
			for i := range deltas {
				deltas[i] = parts[i].Clone()
			}
			go func() {
				next := make([]engine.Classifier, nsh)
				eval.Parallel(nsh, nsh, func(i int) {
					clf := cloners[i].CloneClassifier()
					eval.Train(clf, deltas[i])
					next[i] = clf
				})
				build <- next
			}()
		default:
			fulls := make([]*corpus.Corpus, nsh)
			for i := range fulls {
				fulls[i] = stores[i].Clone()
			}
			go func() {
				next := make([]engine.Classifier, nsh)
				eval.Parallel(nsh, nsh, func(i int) {
					next[i] = eval.TrainBackend(backend.New, fulls[i])
				})
				build <- next
			}()
		}
		pending = build
		res.Weeks = append(res.Weeks, report)
	}
	return res, nil
}

// minGeneration returns the oldest serving generation across shards.
func minGeneration(gens []uint64) uint64 {
	min := gens[0]
	for _, g := range gens[1:] {
		if g < min {
			min = g
		}
	}
	return min
}

// renderShardTable appends the per-shard at-delivery ham-loss matrix
// to an online trace: one row per week, one column per shard, with
// the targeted shard (if any) marked in the header.
func renderShardTable(b *strings.Builder, r *OnlineResult) {
	nsh := len(r.Weeks[0].ByShard)
	target := r.Cfg.TargetShard()
	header := make([]string, 0, nsh+1)
	header = append(header, "week")
	for i := 0; i < nsh; i++ {
		label := fmt.Sprintf("s%d", i)
		if i == target {
			label += "*"
		}
		header = append(header, label+" ham lost")
	}
	t := newTable(header...)
	for _, w := range r.Weeks {
		row := make([]string, 0, nsh+1)
		row = append(row, fmt.Sprintf("%d", w.Week))
		for _, conf := range w.ByShard {
			row = append(row, fmt.Sprintf("%.1f%%", 100*conf.HamMisclassifiedRate()))
		}
		t.addRow(row...)
	}
	fmt.Fprintf(b, "per-shard at-delivery ham loss (recipient-hash, %d shards", nsh)
	if target >= 0 {
		fmt.Fprintf(b, "; * = %s's shard", r.Cfg.AttackRecipient)
	}
	b.WriteString("):\n")
	b.WriteString(t.String())
}
