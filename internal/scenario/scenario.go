// Package scenario simulates the paper's §2.1 deployment model end to
// end: an organization filters everyone's incoming email with one
// SpamBayes filter and retrains it periodically (e.g., weekly) on the
// accumulated mail store. Attack emails arrive in the weekly stream
// like any other mail and are labeled spam when training (the
// contamination assumption, §2.2) — and, optionally, a RONI scrubbing
// step (§5.1) vets every new training candidate before it enters the
// store.
//
// The simulator ties every subsystem of this repository together:
// corpus generation, the learner, the attacks, the defense, and the
// evaluation metrics, week by week.
package scenario

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/engine"
	"repro/internal/eval"
	"repro/internal/stats"
	"repro/internal/textgen"

	// Register the stock backends so a Config can name them.
	_ "repro/internal/graham"
	_ "repro/internal/sbayes"
)

// Config parameterizes a simulated deployment.
type Config struct {
	// Backend names the learner the organization deploys, from the
	// engine registry ("sbayes", "graham"; empty selects "sbayes").
	// Attack-transfer scenarios run the same attack stream against
	// different backends by varying only this field.
	Backend string
	// Weeks is how many retraining periods to simulate.
	Weeks int
	// InitialMailStore is the clean bootstrap corpus size.
	InitialMailStore int
	// MessagesPerWeek is the weekly legitimate mail volume.
	MessagesPerWeek int
	// SpamPrevalence is the spam fraction of organic mail.
	SpamPrevalence float64
	// TestSize is the fresh per-week evaluation corpus size.
	TestSize int

	// Attack, if non-nil, injects attack emails into the weekly
	// stream from AttackStartWeek on, AttackFraction of the weekly
	// volume.
	Attack          core.Attacker
	AttackStartWeek int
	AttackFraction  float64

	// UseRONI inserts the §5.1 defense into the retraining pipeline:
	// each week's candidates are measured against samples of the
	// existing (trusted) mail store and rejected on negative impact.
	UseRONI bool
	RONI    core.RONIConfig
}

// DefaultConfig returns a small office-sized deployment.
func DefaultConfig() Config {
	return Config{
		Weeks:            8,
		InitialMailStore: 2000,
		MessagesPerWeek:  1000,
		SpamPrevalence:   0.5,
		TestSize:         400,
		AttackStartWeek:  3,
		AttackFraction:   0.02,
		RONI:             core.DefaultRONIConfig(),
	}
}

// BackendName returns the configured backend, defaulting to sbayes.
func (c Config) BackendName() string {
	if c.Backend == "" {
		return "sbayes"
	}
	return c.Backend
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if _, err := engine.Lookup(c.BackendName()); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	switch {
	case c.Weeks < 1:
		return fmt.Errorf("scenario: Weeks %d", c.Weeks)
	case c.InitialMailStore < 10:
		return fmt.Errorf("scenario: InitialMailStore %d", c.InitialMailStore)
	case c.MessagesPerWeek < 1:
		return fmt.Errorf("scenario: MessagesPerWeek %d", c.MessagesPerWeek)
	case c.SpamPrevalence <= 0 || c.SpamPrevalence >= 1:
		return fmt.Errorf("scenario: SpamPrevalence %v", c.SpamPrevalence)
	case c.TestSize < 2:
		return fmt.Errorf("scenario: TestSize %d", c.TestSize)
	case c.Attack != nil && (c.AttackFraction <= 0 || c.AttackFraction >= 1):
		return fmt.Errorf("scenario: AttackFraction %v", c.AttackFraction)
	case c.Attack != nil && c.AttackStartWeek < 1:
		return fmt.Errorf("scenario: AttackStartWeek %d", c.AttackStartWeek)
	}
	if c.UseRONI {
		return c.RONI.Validate()
	}
	return nil
}

// WeekReport is one retraining period's outcome.
type WeekReport struct {
	Week            int
	MailStoreSize   int
	AttackArrived   int
	AttackRejected  int
	OrganicRejected int
	Confusion       eval.Confusion
}

// Result is the full simulation trace.
type Result struct {
	Cfg   Config
	Weeks []WeekReport
}

// Run simulates the deployment. All randomness comes from r. The
// learner is whichever backend cfg names — the attack stream, the
// RONI defense, and the weekly evaluation all operate through the
// backend-generic interface.
func Run(g *textgen.Generator, cfg Config, r *stats.RNG) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	backend, err := engine.Lookup(cfg.BackendName())
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}

	nSpam := int(float64(cfg.InitialMailStore)*cfg.SpamPrevalence + 0.5)
	store := g.Corpus(r.Split("bootstrap"), cfg.InitialMailStore-nSpam, nSpam)
	res := &Result{Cfg: cfg}

	for week := 1; week <= cfg.Weeks; week++ {
		wr := r.Split(fmt.Sprintf("week-%d", week))
		report := WeekReport{Week: week}

		// This week's organic mail.
		wSpam := int(float64(cfg.MessagesPerWeek)*cfg.SpamPrevalence + 0.5)
		weekly := g.Corpus(wr, cfg.MessagesPerWeek-wSpam, wSpam)

		// The attacker's contribution, labeled spam when trained
		// (the contamination assumption).
		var attackBody string
		if cfg.Attack != nil && week >= cfg.AttackStartWeek {
			n := core.AttackSize(cfg.AttackFraction, cfg.MessagesPerWeek)
			attackMsg := cfg.Attack.BuildAttack(wr)
			attackBody = attackMsg.Body
			for i := 0; i < n; i++ {
				weekly.Add(attackMsg, true)
			}
			report.AttackArrived = n
			weekly.Shuffle(wr)
		}

		// Optional RONI scrubbing against the trusted store.
		if cfg.UseRONI {
			defense, err := core.NewRONIBackend(cfg.RONI, store, backend.New, wr)
			if err != nil {
				return nil, fmt.Errorf("scenario week %d: %w", week, err)
			}
			kept, rejected := roniFilterFast(defense, weekly)
			for _, e := range rejected.Examples {
				if attackBody != "" && e.Msg.Body == attackBody {
					report.AttackRejected++
				} else {
					report.OrganicRejected++
				}
			}
			weekly = kept
		}

		store.Append(weekly)
		report.MailStoreSize = store.Len()

		// Weekly retraining and evaluation on fresh mail, scored in
		// parallel across GOMAXPROCS.
		clf := eval.TrainBackend(backend.New, store)
		tSpam := int(float64(cfg.TestSize)*cfg.SpamPrevalence + 0.5)
		test := g.Corpus(wr.Split("test"), cfg.TestSize-tSpam, tSpam)
		report.Confusion = eval.EvaluateBatch(clf, test, 0)
		res.Weeks = append(res.Weeks, report)
	}
	return res, nil
}

// roniFilterFast is core.RONI.FilterCorpus with memoization of
// identical candidates: the attacker sends n identical emails, and
// measuring one is measuring all.
func roniFilterFast(d *core.RONI, candidates *corpus.Corpus) (kept, rejected *corpus.Corpus) {
	kept, rejected = &corpus.Corpus{}, &corpus.Corpus{}
	type verdictKey struct {
		body string
		spam bool
	}
	cache := map[verdictKey]bool{}
	for _, e := range candidates.Examples {
		key := verdictKey{body: e.Msg.Body, spam: e.Spam}
		reject, seen := cache[key]
		if !seen {
			reject = d.ShouldReject(e.Msg, e.Spam)
			cache[key] = reject
		}
		if reject {
			rejected.Add(e.Msg, e.Spam)
		} else {
			kept.Add(e.Msg, e.Spam)
		}
	}
	return kept, rejected
}

// FinalHamLoss returns the last week's ham misclassification rate.
func (r *Result) FinalHamLoss() float64 {
	if len(r.Weeks) == 0 {
		return 0
	}
	return r.Weeks[len(r.Weeks)-1].Confusion.HamMisclassifiedRate()
}

// Render prints the weekly trace.
func (r *Result) Render() string {
	var b strings.Builder
	label := "no attack"
	if r.Cfg.Attack != nil {
		label = fmt.Sprintf("%s attack from week %d at %.1f%%/week",
			r.Cfg.Attack.Name(), r.Cfg.AttackStartWeek, 100*r.Cfg.AttackFraction)
	}
	defense := "no defense"
	if r.Cfg.UseRONI {
		defense = "RONI scrubbing"
	}
	fmt.Fprintf(&b, "Deployment simulation (§2.1): %s backend, weekly retraining, %s, %s.\n",
		r.Cfg.BackendName(), label, defense)
	t := newTable("week", "store", "atk in", "atk rej", "org rej", "ham lost", "spam caught")
	for _, w := range r.Weeks {
		t.addRow(
			fmt.Sprintf("%d", w.Week),
			fmt.Sprintf("%d", w.MailStoreSize),
			fmt.Sprintf("%d", w.AttackArrived),
			fmt.Sprintf("%d", w.AttackRejected),
			fmt.Sprintf("%d", w.OrganicRejected),
			fmt.Sprintf("%.1f%%", 100*w.Confusion.HamMisclassifiedRate()),
			fmt.Sprintf("%.1f%%", 100*(1-w.Confusion.SpamMisclassifiedRate())))
	}
	b.WriteString(t.String())
	return b.String()
}

// table is a minimal aligned-column renderer (duplicated from the
// experiments package to keep scenario free of that dependency).
type table struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *table { return &table{header: header} }

func (t *table) addRow(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
