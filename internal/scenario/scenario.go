// Package scenario simulates the paper's §2.1 deployment model end to
// end: an organization filters everyone's incoming email with one
// filter and retrains it periodically (e.g., weekly) on the
// accumulated mail store. Attack emails arrive in the weekly stream
// like any other mail and are labeled spam when training (the
// contamination assumption, §2.2) — and, optionally, a RONI scrubbing
// step (§5.1) vets every new training candidate before it enters the
// store.
//
// Two simulators share the machinery:
//
//   - Run measures the classic after-the-fact view: retrain at each
//     week's end, then score a fresh test corpus against the new
//     filter.
//   - RunOnline measures what users actually experienced: every
//     message (organic and attack) is scored one at a time through an
//     engine.Engine as it arrives, the at-delivery verdicts accumulate
//     into per-week confusions, and retraining happens in the
//     background — the replacement snapshot is built concurrently with
//     the next week's deliveries and published by atomic swap
//     RetrainLag messages in, so early-week mail is still judged by
//     the previous generation.
//
// The simulator ties every subsystem of this repository together:
// corpus generation, the learner, the attacks, the defense, the
// serving engine, and the evaluation metrics, week by week.
package scenario

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/engine"
	"repro/internal/eval"
	"repro/internal/mail"
	"repro/internal/stats"
	"repro/internal/textgen"

	// Register the stock backends so a Config can name them.
	_ "repro/internal/graham"
	_ "repro/internal/sbayes"
)

// RetrainMode selects how RunOnline rebuilds the serving snapshot at
// each week boundary. Run always retrains periodically.
type RetrainMode int

const (
	// RetrainPeriodic rebuilds a fresh classifier from the entire
	// accumulated store — the paper's §2.1 weekly retrain.
	RetrainPeriodic RetrainMode = iota
	// RetrainIncremental clones the serving snapshot and trains only
	// the week's newly kept mail into the clone (both token-count
	// backends are additive, so the result matches a full rebuild at a
	// fraction of the cost).
	RetrainIncremental
)

// String names the mode for traces and errors.
func (m RetrainMode) String() string {
	switch m {
	case RetrainPeriodic:
		return "periodic"
	case RetrainIncremental:
		return "incremental"
	default:
		return fmt.Sprintf("RetrainMode(%d)", int(m))
	}
}

// Config parameterizes a simulated deployment.
type Config struct {
	// Backend names the learner the organization deploys, from the
	// engine registry ("sbayes", "graham"; empty selects "sbayes").
	// Attack-transfer scenarios run the same attack stream against
	// different backends by varying only this field.
	Backend string
	// Weeks is how many retraining periods to simulate.
	Weeks int
	// InitialMailStore is the clean bootstrap corpus size.
	InitialMailStore int
	// MessagesPerWeek is the weekly legitimate mail volume.
	MessagesPerWeek int
	// SpamPrevalence is the spam fraction of organic mail.
	SpamPrevalence float64
	// TestSize is the fresh per-week evaluation corpus size (Run
	// only; RunOnline records at-delivery verdicts instead).
	TestSize int

	// Attack, if non-nil, injects attack emails into the weekly
	// stream from AttackStartWeek on, AttackFraction of the weekly
	// volume.
	Attack          core.Attacker
	AttackStartWeek int
	AttackFraction  float64
	// AttackChunks, when > 1, splits the attack payload across that
	// many distinct emails (the §4.2 stealth variant) and cycles the
	// weekly attack volume through them. It requires an attacker with
	// the core.ChunkedAttacker capability. 0 or 1 replicates one
	// attack email, as the paper's attacks do.
	AttackChunks int
	// AttackAdaptive lets the attacker adapt its weekly dose to
	// observed feedback (RunOnline only): each week's volume is
	// AttackFraction scaled by the attacker's learned multiplier, and
	// at week's end the attacker observes how much of its poison the
	// training pipeline accepted (arrivals minus rejections and
	// quarantines). It requires an attack with the
	// core.FeedbackAttacker capability (core.AdaptiveAttacker wraps
	// any attack with one).
	AttackAdaptive bool
	// AttackLabelHam delivers attack messages with ham training labels
	// — the §2.2 pseudospam variant, lifted from the paper's
	// spam-labeled restriction — to stress defenses that only distrust
	// spam-labeled mail. At-delivery confusions still count attack
	// mail as true spam (it is the attacker's); only its training
	// label changes.
	AttackLabelHam bool

	// UseRONI inserts the §5.1 defense into the retraining pipeline:
	// each week's candidates are measured against samples of the
	// existing (trusted) mail store and rejected on negative impact.
	UseRONI bool
	RONI    core.RONIConfig

	// Admission, if non-nil, replaces the week-end batch defense with
	// the inline vetting pipeline (RunOnline only, mutually exclusive
	// with UseRONI): every candidate is vetted as it arrives through
	// an engine.Guarded chain (TokenFloodGate → budgeted
	// IncrementalRONI → Quarantine), and each snapshot swap refits the
	// dynamic thresholds, refreshes the calibration pool, and reviews
	// the quarantine. Weekly reports carry the per-decision split
	// (organic vs. attack) and the probe accounting against what one
	// week-end batch pass would have cost.
	Admission *AdmissionConfig

	// Retraining selects RunOnline's rebuild strategy (periodic full
	// rebuild by default, or incremental clone-and-extend).
	Retraining RetrainMode
	// RetrainLag is how many of the following week's messages are
	// delivered before the retrained snapshot goes live (RunOnline
	// only): the replacement is built in the background while those
	// messages are still scored by the previous generation. 0
	// publishes right at the boundary; values beyond the weekly volume
	// publish at the next boundary.
	RetrainLag int

	// Shards, when > 1, serves RunOnline deliveries through a
	// hash-by-recipient engine.Sharded of that many shards: the
	// generator's messages are stamped with recipients from a fixed
	// user population, each shard serves — and is retrained on — only
	// the mail routed to it, and per-shard Delivered confusions
	// separate the attack's damage to the target's shard from
	// collateral damage elsewhere. 0 or 1 keeps the single-engine
	// deployment.
	Shards int
	// Recipients is the distinct user population in sharded mode (0
	// selects four per shard). Organic mail is stamped uniformly
	// across the population.
	Recipients int
	// AttackRecipient, when non-empty, stamps every attack email with
	// that recipient, so the poison trains into a single user's shard
	// — the sharded rendition of the paper's §4.3 targeted setting.
	// Empty spreads attack mail across the population like organic
	// mail. Sharded mode only.
	AttackRecipient string

	// Checkpoints, if non-nil, makes the online deployment durable:
	// every CheckpointEvery-th snapshot publish is persisted into the
	// store through the engine persistence layer (the bootstrap
	// snapshot is saved up front, so a crash in week 1 still has a
	// restart point). Single-engine mode persists under the name
	// "scenario-online"; sharded mode saves every shard's own
	// generation line under "scenario-sharded.shard<i>". RunOnline
	// only.
	Checkpoints engine.SnapshotStore
	// CheckpointEvery saves every Nth publish (<= 0 selects 1, every
	// publish). A value above 1 models a deployment that checkpoints
	// less often than it retrains — after a crash it resumes an older
	// generation, and the trace shows the regression.
	CheckpointEvery int
	// CrashAtWeek, if > 0, simulates a process crash at the end of
	// that week: the serving engine (every shard, in sharded mode) is
	// discarded and resumed from Checkpoints' latest valid
	// generation, so the following weeks are served — and incremental
	// retrains are branched — from the restored snapshot. Requires
	// Checkpoints. The crash point is fixed in simulated time, so the
	// trace stays deterministic.
	CrashAtWeek int
}

// DefaultConfig returns a small office-sized deployment.
func DefaultConfig() Config {
	return Config{
		Weeks:            8,
		InitialMailStore: 2000,
		MessagesPerWeek:  1000,
		SpamPrevalence:   0.5,
		TestSize:         400,
		AttackStartWeek:  3,
		AttackFraction:   0.02,
		RONI:             core.DefaultRONIConfig(),
	}
}

// BackendName returns the configured backend, defaulting to sbayes.
func (c Config) BackendName() string {
	if c.Backend == "" {
		return "sbayes"
	}
	return c.Backend
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if _, err := engine.Lookup(c.BackendName()); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	switch {
	case c.Weeks < 1:
		return fmt.Errorf("scenario: Weeks %d", c.Weeks)
	case c.InitialMailStore < 10:
		return fmt.Errorf("scenario: InitialMailStore %d", c.InitialMailStore)
	case c.MessagesPerWeek < 1:
		return fmt.Errorf("scenario: MessagesPerWeek %d", c.MessagesPerWeek)
	case c.SpamPrevalence <= 0 || c.SpamPrevalence >= 1:
		return fmt.Errorf("scenario: SpamPrevalence %v", c.SpamPrevalence)
	case c.TestSize < 2:
		return fmt.Errorf("scenario: TestSize %d", c.TestSize)
	case c.Attack != nil && (c.AttackFraction <= 0 || c.AttackFraction >= 1):
		return fmt.Errorf("scenario: AttackFraction %v", c.AttackFraction)
	case c.Attack != nil && c.AttackStartWeek < 1:
		return fmt.Errorf("scenario: AttackStartWeek %d", c.AttackStartWeek)
	case c.AttackChunks < 0:
		return fmt.Errorf("scenario: AttackChunks %d", c.AttackChunks)
	case c.AttackAdaptive && c.Attack == nil:
		return fmt.Errorf("scenario: AttackAdaptive without an Attack")
	case c.AttackLabelHam && c.Attack == nil:
		return fmt.Errorf("scenario: AttackLabelHam without an Attack")
	case c.Admission != nil && c.UseRONI:
		return fmt.Errorf("scenario: Admission and UseRONI are mutually exclusive")
	case c.RetrainLag < 0:
		return fmt.Errorf("scenario: RetrainLag %d", c.RetrainLag)
	case c.Retraining != RetrainPeriodic && c.Retraining != RetrainIncremental:
		return fmt.Errorf("scenario: Retraining %v", c.Retraining)
	case c.Shards < 0:
		return fmt.Errorf("scenario: Shards %d", c.Shards)
	case c.Recipients < 0:
		return fmt.Errorf("scenario: Recipients %d", c.Recipients)
	case c.Recipients > 0 && c.Shards < 2:
		return fmt.Errorf("scenario: Recipients %d without Shards > 1", c.Recipients)
	case c.AttackRecipient != "" && c.Shards < 2:
		return fmt.Errorf("scenario: AttackRecipient %q without Shards > 1", c.AttackRecipient)
	case c.CheckpointEvery < 0:
		return fmt.Errorf("scenario: CheckpointEvery %d", c.CheckpointEvery)
	case c.CheckpointEvery > 0 && c.Checkpoints == nil:
		return fmt.Errorf("scenario: CheckpointEvery %d without a Checkpoints store", c.CheckpointEvery)
	case c.CrashAtWeek < 0:
		return fmt.Errorf("scenario: CrashAtWeek %d", c.CrashAtWeek)
	case c.CrashAtWeek > 0 && c.Checkpoints == nil:
		return fmt.Errorf("scenario: CrashAtWeek %d without a Checkpoints store", c.CrashAtWeek)
	case c.CrashAtWeek > c.Weeks:
		return fmt.Errorf("scenario: CrashAtWeek %d beyond Weeks %d", c.CrashAtWeek, c.Weeks)
	}
	if c.Attack != nil && c.AttackChunks > 1 {
		if _, err := chunkedAttacker(c.Attack); err != nil {
			return err
		}
	}
	if c.AttackAdaptive {
		if _, err := feedbackAttacker(c.Attack); err != nil {
			return err
		}
	}
	if c.Admission != nil {
		if err := c.Admission.Validate(); err != nil {
			return err
		}
	}
	if c.UseRONI {
		return c.RONI.Validate()
	}
	return nil
}

// WeekReport is one retraining period's outcome under Run.
type WeekReport struct {
	Week            int
	MailStoreSize   int
	AttackArrived   int
	AttackRejected  int
	OrganicRejected int
	Confusion       eval.Confusion
}

// Result is the full simulation trace of Run.
type Result struct {
	Cfg   Config
	Weeks []WeekReport
}

// injectAttack adds the week's attack traffic to the weekly stream
// and shuffles it in. fraction is the week's dose (the configured
// AttackFraction, or the adaptive attacker's scaled dose). It returns
// the distinct payloads in build order (so callers can stamp them
// deterministically) and the injected messages as an identity set —
// the same *mail.Message is added many times for a replicated attack,
// and a chunked attack injects several distinct messages — so that
// rejection attribution can match by pointer rather than by body text
// (which would misattribute organic mail whose body collides with the
// attack payload).
func injectAttack(cfg Config, week int, fraction float64, weekly *corpus.Corpus, wr *stats.RNG) ([]*mail.Message, map[*mail.Message]bool, int, error) {
	if cfg.Attack == nil || week < cfg.AttackStartWeek {
		return nil, nil, 0, nil
	}
	n := core.AttackSize(fraction, cfg.MessagesPerWeek)
	if n == 0 {
		return nil, nil, 0, nil
	}
	var payloads []*mail.Message
	if cfg.AttackChunks > 1 {
		chunked, err := chunkedAttacker(cfg.Attack)
		if err != nil {
			return nil, nil, 0, err
		}
		payloads = chunked.BuildChunked(cfg.AttackChunks)
	} else {
		payloads = []*mail.Message{cfg.Attack.BuildAttack(wr)}
	}
	injected := make(map[*mail.Message]bool, len(payloads))
	for _, m := range payloads {
		injected[m] = true
	}
	// The attacker's contribution is labeled spam when trained (the
	// contamination assumption) — unless the pseudospam variant lifts
	// the restriction and trains it as ham.
	for i := 0; i < n; i++ {
		weekly.Add(payloads[i%len(payloads)], !cfg.AttackLabelHam)
	}
	weekly.Shuffle(wr)
	return payloads, injected, n, nil
}

// chunkedAttacker returns the attack's chunking capability, or an
// error naming the attack (shared by Validate and injectAttack so the
// two checks cannot drift).
func chunkedAttacker(a core.Attacker) (core.ChunkedAttacker, error) {
	c, ok := a.(core.ChunkedAttacker)
	if !ok {
		return nil, fmt.Errorf("scenario: attack %q cannot be chunked", a.Name())
	}
	return c, nil
}

// rejecter is the slice of core.RONI the scrubbing step needs
// (narrowed so tests can substitute a deterministic stub).
type rejecter interface {
	ShouldReject(q *mail.Message, qSpam bool) bool
}

// scrubWeek runs the RONI defense over the weekly candidates,
// memoizing verdicts by message identity — the attacker sends the
// same message many times, and measuring one copy is measuring all —
// and attributing rejections against the injected attack set by the
// same identity key, so an organic message whose body happens to
// match an attack payload is still counted organic and every chunk of
// a multi-message attack is counted attack.
func scrubWeek(d rejecter, weekly *corpus.Corpus, attackSet map[*mail.Message]bool) (kept *corpus.Corpus, attackRejected, organicRejected int) {
	kept = &corpus.Corpus{}
	type verdictKey struct {
		msg  *mail.Message
		spam bool
	}
	cache := map[verdictKey]bool{}
	for _, e := range weekly.Examples {
		key := verdictKey{msg: e.Msg, spam: e.Spam}
		reject, seen := cache[key]
		if !seen {
			reject = d.ShouldReject(e.Msg, e.Spam)
			cache[key] = reject
		}
		switch {
		case !reject:
			kept.Add(e.Msg, e.Spam)
		case attackSet[e.Msg]:
			attackRejected++
		default:
			organicRejected++
		}
	}
	return kept, attackRejected, organicRejected
}

// Run simulates the deployment, measuring each week after the fact:
// retrain on the accumulated store, then score a fresh test corpus.
// All randomness comes from r. The learner is whichever backend cfg
// names — the attack stream, the RONI defense, and the weekly
// evaluation all operate through the backend-generic interface.
func Run(g *textgen.Generator, cfg Config, r *stats.RNG) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// The per-arrival defenses only exist in the online simulator;
	// silently running an "admission-defended" batch simulation
	// undefended would be worse than refusing.
	if cfg.Admission != nil {
		return nil, fmt.Errorf("scenario: Admission is online-only; use RunOnline")
	}
	if cfg.AttackAdaptive {
		return nil, fmt.Errorf("scenario: AttackAdaptive is online-only; use RunOnline")
	}
	backend, err := engine.Lookup(cfg.BackendName())
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}

	nSpam := int(float64(cfg.InitialMailStore)*cfg.SpamPrevalence + 0.5)
	store := g.Corpus(r.Split("bootstrap"), cfg.InitialMailStore-nSpam, nSpam)
	res := &Result{Cfg: cfg}

	for week := 1; week <= cfg.Weeks; week++ {
		wr := r.Split(fmt.Sprintf("week-%d", week))
		report := WeekReport{Week: week}

		// This week's organic mail, plus the attacker's contribution.
		wSpam := int(float64(cfg.MessagesPerWeek)*cfg.SpamPrevalence + 0.5)
		weekly := g.Corpus(wr, cfg.MessagesPerWeek-wSpam, wSpam)
		_, attackSet, arrived, err := injectAttack(cfg, week, cfg.AttackFraction, weekly, wr)
		if err != nil {
			return nil, err
		}
		report.AttackArrived = arrived

		// Optional RONI scrubbing against the trusted store.
		if cfg.UseRONI {
			defense, err := core.NewRONIBackend(cfg.RONI, store, backend.New, wr)
			if err != nil {
				return nil, fmt.Errorf("scenario week %d: %w", week, err)
			}
			weekly, report.AttackRejected, report.OrganicRejected = scrubWeek(defense, weekly, attackSet)
		}

		store.Append(weekly)
		report.MailStoreSize = store.Len()

		// Weekly retraining and evaluation on fresh mail, scored in
		// parallel across GOMAXPROCS.
		clf := eval.TrainBackend(backend.New, store)
		tSpam := int(float64(cfg.TestSize)*cfg.SpamPrevalence + 0.5)
		test := g.Corpus(wr.Split("test"), cfg.TestSize-tSpam, tSpam)
		report.Confusion = eval.EvaluateBatch(clf, test, 0)
		res.Weeks = append(res.Weeks, report)
	}
	return res, nil
}

// OnlineWeekReport is one week's outcome under RunOnline.
type OnlineWeekReport struct {
	Week          int
	MailStoreSize int
	// Generation is the engine's serving snapshot generation at the
	// end of the week (retrains publish mid-week when RetrainLag > 0).
	Generation      uint64
	AttackArrived   int
	AttackRejected  int
	OrganicRejected int
	// AttackDose is the attack fraction used this week — the
	// configured fraction, or the adaptive attacker's scaled dose
	// (zero in weeks with no attack traffic).
	AttackDose float64
	// Admission, when Config.Admission is set, is the week's inline
	// vetting outcome: per-decision counts split organic vs. attack,
	// probe accounting against the batch-pass equivalent, quarantine
	// review results, and the refit thresholds. Nil otherwise (the
	// batch fields above then carry any RONI scrubbing results; in
	// admission mode AttackRejected/OrganicRejected mirror the
	// admission rejections so the main trace stays comparable).
	Admission *AdmissionWeek
	// Delivered tallies the verdict every arriving message actually
	// received at delivery time — organic mail under its true label,
	// attack mail as true spam. This is the user-visible confusion the
	// after-the-fact test-set evaluation of Run cannot see.
	Delivered eval.Confusion
	// ByShard, in sharded mode (Config.Shards > 1), splits Delivered
	// by serving shard: ByShard[i] is the at-delivery confusion of the
	// mailboxes routed to shard i, which is what separates the
	// targeted shard's damage from collateral damage elsewhere. Nil in
	// single-engine mode.
	ByShard []eval.Confusion
	// ShardGenerations, in sharded mode, is each shard's serving
	// generation at week's end (Generation then reports the oldest).
	// Nil in single-engine mode.
	ShardGenerations []uint64
	// Checkpointed counts the snapshot saves performed this week
	// (Config.Checkpoints; in sharded mode one fleet-wide SaveAll is
	// one checkpoint).
	Checkpointed int
	// Resumed is true when the simulated crash hit this week's end
	// (Config.CrashAtWeek): the engine was discarded and restored
	// from the checkpoint store, and Generation reports the resumed
	// generation the next week starts from.
	Resumed bool
}

// OnlineResult is the full simulation trace of RunOnline.
type OnlineResult struct {
	Cfg   Config
	Weeks []OnlineWeekReport
}

// Snapshot-store keys of the online deployment's checkpoint lines
// (Config.Checkpoints): the single engine persists under
// OnlineCheckpointName; sharded mode persists each shard under
// engine.ShardSnapshotName(ShardedCheckpointName, i).
const (
	OnlineCheckpointName  = "scenario-online"
	ShardedCheckpointName = "scenario-sharded"
)

// checkpointer spaces snapshot saves CheckpointEvery publishes apart
// — the durability-versus-write-amplification knob both RunOnline
// paths share. A nil checkpointer (no store configured) counts
// nothing and never saves.
type checkpointer struct {
	every int
	since int
	save  func() error
}

func newCheckpointer(cfg Config, save func() error) *checkpointer {
	if cfg.Checkpoints == nil {
		return nil
	}
	every := cfg.CheckpointEvery
	if every < 1 {
		every = 1
	}
	return &checkpointer{every: every, save: save}
}

// saveNow checkpoints immediately, outside the cadence — the
// bootstrap save both RunOnline paths perform up front so a crash
// before the first publish still has a restart point.
func (c *checkpointer) saveNow() error {
	if c == nil {
		return nil
	}
	return c.save()
}

// published records one snapshot publish, saving when the cadence is
// due; it reports whether a checkpoint was written.
func (c *checkpointer) published() (bool, error) {
	if c == nil {
		return false, nil
	}
	c.since++
	if c.since < c.every {
		return false, nil
	}
	c.since = 0
	if err := c.save(); err != nil {
		return false, err
	}
	return true, nil
}

// RunOnline simulates the deployment one message at a time through a
// serving engine: every message is classified as it arrives and the
// verdict the user saw is recorded; at each week's end the candidates
// are (optionally) RONI-scrubbed into the store and a replacement
// snapshot is built in the background — concurrently with the next
// week's deliveries — and published by atomic swap once cfg.RetrainLag
// messages of that week have gone out. The trace is deterministic:
// the swap point is fixed in simulated time, so verdicts do not
// depend on wall-clock scheduling.
//
// With cfg.Checkpoints set the deployment is durable: publishes are
// persisted through the engine persistence layer on the
// CheckpointEvery cadence, and cfg.CrashAtWeek simulates the restart
// — the engine is discarded at that week's end and resumed from the
// store's latest valid generation, so the remaining weeks measure
// what users experience after a recovery (including any generations
// the checkpoint cadence lost).
func RunOnline(g *textgen.Generator, cfg Config, r *stats.RNG) (*OnlineResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	backend, err := engine.Lookup(cfg.BackendName())
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if cfg.Shards > 1 {
		return runOnlineSharded(g, cfg, r, backend)
	}

	nSpam := int(float64(cfg.InitialMailStore)*cfg.SpamPrevalence + 0.5)
	store := g.Corpus(r.Split("bootstrap"), cfg.InitialMailStore-nSpam, nSpam)
	eng := engine.New(eval.TrainBackend(backend.New, store), engine.Config{Name: OnlineCheckpointName})
	res := &OnlineResult{Cfg: cfg}

	// Inline admission control: the engine gains a guard whose chain
	// vets every candidate at arrival and whose publish hooks run the
	// swap-time defenses. The guard wraps whatever engine currently
	// serves, so a post-crash resume rebuilds it below.
	var adm *onlineAdmission
	var guard *engine.Guarded
	if cfg.Admission != nil {
		adm, err = newOnlineAdmission(*cfg.Admission, backend, store, cfg.SpamPrevalence, r.Split("admission"))
		if err != nil {
			return nil, err
		}
		guard = engine.NewGuarded(eng, adm.chain, adm.guardCfg)
	}
	ctx := context.Background()

	// Durable mode: persist the bootstrap snapshot up front, then
	// checkpoint publishes on the configured cadence. The save
	// closure reads eng through the variable, so post-crash
	// checkpoints persist the resumed line.
	ckpt := newCheckpointer(cfg, func() error {
		_, err := engine.SaveEngine(cfg.Checkpoints, OnlineCheckpointName, cfg.BackendName(), eng)
		return err
	})
	if err := ckpt.saveNow(); err != nil {
		return nil, fmt.Errorf("scenario: bootstrap checkpoint: %w", err)
	}

	// pending carries the background rebuild across the week boundary:
	// the builder goroutine trains the replacement while the next
	// week's early mail is delivered against the old snapshot.
	var pending chan engine.Classifier
	for week := 1; week <= cfg.Weeks; week++ {
		wr := r.Split(fmt.Sprintf("week-%d", week))
		report := OnlineWeekReport{Week: week}

		wSpam := int(float64(cfg.MessagesPerWeek)*cfg.SpamPrevalence + 0.5)
		weekly := g.Corpus(wr, cfg.MessagesPerWeek-wSpam, wSpam)
		dose := attackDose(cfg)
		_, attackSet, arrived, err := injectAttack(cfg, week, dose, weekly, wr)
		if err != nil {
			return nil, err
		}
		report.AttackArrived = arrived
		if arrived > 0 {
			report.AttackDose = dose
		}

		// publish swaps the background-built replacement in and
		// checkpoints it when the cadence is due. With a guard the swap
		// also runs the swap-time defenses: the pre-publish
		// threshold refit mutates the replacement before it serves, and
		// the post-publish hook refreshes the calibration pool and
		// reviews the quarantine.
		publish := func() error {
			next := <-pending
			pending = nil
			if guard != nil {
				if _, err := guard.Swap(next); err != nil {
					return fmt.Errorf("scenario week %d: %w", week, err)
				}
			} else {
				eng.Swap(next)
			}
			saved, err := ckpt.published()
			if err != nil {
				return fmt.Errorf("scenario week %d: checkpoint: %w", week, err)
			}
			if saved {
				report.Checkpointed++
			}
			return nil
		}

		// Inline vetting accumulates the admitted candidates as they
		// arrive; without admission everything trains (modulo the
		// optional week-end batch scrub below).
		kept := weekly
		var admStartProbes uint64
		if adm != nil {
			report.Admission = &AdmissionWeek{}
			admStartProbes = adm.roni.Stats().Probes
			kept = &corpus.Corpus{}
		}

		// Deliver one message at a time. Last week's retrain goes live
		// RetrainLag messages in; until then users get the previous
		// generation's verdicts.
		for i, ex := range weekly.Examples {
			if pending != nil && i == cfg.RetrainLag {
				if err := publish(); err != nil {
					return nil, err
				}
			}
			verdict := eng.Classify(ex.Msg)
			// Attack mail is observed as true spam even when the
			// pseudospam variant trains it under a ham label.
			report.Delivered.Observe(ex.Spam || attackSet[ex.Msg], verdict.Label)
			if adm != nil {
				d := guard.Vet(ctx, ex.Msg, ex.Spam)
				adm.countWeek(report.Admission, d, attackSet[ex.Msg])
				if d.Verdict == engine.AdmitAccept {
					kept.Add(ex.Msg, ex.Spam)
				}
			}
		}
		if pending != nil {
			// The lag reached past the week's volume: publish at the
			// boundary instead.
			if err := publish(); err != nil {
				return nil, err
			}
		}

		// Week's end: scrub the candidates (batch mode) or settle the
		// inline accounting, then grow the store.
		if cfg.UseRONI {
			defense, err := core.NewRONIBackend(cfg.RONI, store, backend.New, wr)
			if err != nil {
				return nil, fmt.Errorf("scenario week %d: %w", week, err)
			}
			kept, report.AttackRejected, report.OrganicRejected = scrubWeek(defense, weekly, attackSet)
		}
		if adm != nil {
			aw := report.Admission
			aw.Probes = int(adm.roni.Stats().Probes - admStartProbes)
			aw.BatchProbeEquivalent = distinctCandidates(weekly)
			kept.Append(adm.drainWeek(aw))
			// Mirror the rejections into the batch columns so the main
			// trace reads the same in both modes.
			report.AttackRejected = aw.AttackRejected
			report.OrganicRejected = aw.OrganicRejected
			observeAttackFeedback(cfg, arrived, aw.AttackRejected+aw.AttackQuarantined)
		} else {
			observeAttackFeedback(cfg, arrived, report.AttackRejected)
		}
		store.Append(kept)
		report.MailStoreSize = store.Len()
		report.Generation = eng.Generation()

		// Simulated crash: the process dies at this week's end, taking
		// the in-memory engine with it (the mail store is the org's
		// disk and survives). The restart resumes the checkpoint
		// store's latest valid generation — if the cadence skipped
		// recent publishes, the resumed filter is older than the one
		// that just served, and the trace shows it.
		if week == cfg.CrashAtWeek {
			resumed, _, err := engine.ResumeEngine(cfg.Checkpoints, OnlineCheckpointName,
				engine.Config{Name: OnlineCheckpointName})
			if err != nil {
				return nil, fmt.Errorf("scenario week %d: resume after simulated crash: %w", week, err)
			}
			eng = resumed
			if guard != nil {
				// The guard wraps the restored engine; the admission
				// pipeline (chain, quarantine, budget) is org state and
				// survives the process crash with the mail store.
				guard = engine.NewGuarded(eng, adm.chain, adm.guardCfg)
			}
			report.Resumed = true
			report.Generation = eng.Generation()
		}

		// Kick off the background rebuild; it publishes next week, so
		// after the final week there is nothing to build. The builder
		// works on its own shallow copies, so the main loop's store
		// growth never races it.
		if week == cfg.Weeks {
			res.Weeks = append(res.Weeks, report)
			break
		}
		build := make(chan engine.Classifier, 1)
		switch cfg.Retraining {
		case RetrainIncremental:
			cur := eng.Classifier()
			cloner, ok := cur.(engine.Cloner)
			if !ok {
				return nil, fmt.Errorf("scenario: backend %q (%T) cannot retrain incrementally", cfg.BackendName(), cur)
			}
			delta := kept.Clone()
			go func() {
				next := cloner.CloneClassifier()
				eval.Train(next, delta)
				build <- next
			}()
		default:
			full := store.Clone()
			go func() {
				build <- eval.TrainBackend(backend.New, full)
			}()
		}
		pending = build
		res.Weeks = append(res.Weeks, report)
	}
	return res, nil
}

// FinalHamLoss returns the last week's ham misclassification rate.
func (r *Result) FinalHamLoss() float64 {
	if len(r.Weeks) == 0 {
		return 0
	}
	return r.Weeks[len(r.Weeks)-1].Confusion.HamMisclassifiedRate()
}

// FinalHamLoss returns the last week's at-delivery ham
// misclassification rate.
func (r *OnlineResult) FinalHamLoss() float64 {
	if len(r.Weeks) == 0 {
		return 0
	}
	return r.Weeks[len(r.Weeks)-1].Delivered.HamMisclassifiedRate()
}

// describeAttack renders the attack clause of a trace header.
func describeAttack(cfg Config) string {
	if cfg.Attack == nil {
		return "no attack"
	}
	label := fmt.Sprintf("%s attack from week %d at %.1f%%/week",
		cfg.Attack.Name(), cfg.AttackStartWeek, 100*cfg.AttackFraction)
	if cfg.AttackAdaptive {
		label += " (dose adapts to feedback)"
	}
	if cfg.AttackLabelHam {
		label += " under ham labels"
	}
	if cfg.AttackChunks > 1 {
		label += fmt.Sprintf(" in %d chunks", cfg.AttackChunks)
	}
	if cfg.AttackRecipient != "" {
		label += " aimed at " + cfg.AttackRecipient
	}
	return label
}

// describeDefense renders the defense clause of a trace header.
func describeDefense(cfg Config) string {
	switch {
	case cfg.Admission != nil:
		return "inline admission control"
	case cfg.UseRONI:
		return "RONI scrubbing"
	default:
		return "no defense"
	}
}

// Render prints the weekly trace.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Deployment simulation (§2.1): %s backend, weekly retraining, %s, %s.\n",
		r.Cfg.BackendName(), describeAttack(r.Cfg), describeDefense(r.Cfg))
	t := newTable("week", "store", "atk in", "atk rej", "org rej", "ham lost", "spam caught")
	for _, w := range r.Weeks {
		t.addRow(
			fmt.Sprintf("%d", w.Week),
			fmt.Sprintf("%d", w.MailStoreSize),
			fmt.Sprintf("%d", w.AttackArrived),
			fmt.Sprintf("%d", w.AttackRejected),
			fmt.Sprintf("%d", w.OrganicRejected),
			fmt.Sprintf("%.1f%%", 100*w.Confusion.HamMisclassifiedRate()),
			fmt.Sprintf("%.1f%%", 100*(1-w.Confusion.SpamMisclassifiedRate())))
	}
	b.WriteString(t.String())
	return b.String()
}

// Render prints the weekly at-delivery trace; in sharded mode it
// appends the per-shard ham-loss matrix separating target damage from
// collateral.
func (r *OnlineResult) Render() string {
	var b strings.Builder
	serving := "single engine"
	if r.Cfg.Shards > 1 {
		serving = fmt.Sprintf("%d recipient-hashed shards over %d users", r.Cfg.Shards, r.Cfg.NumRecipients())
	}
	fmt.Fprintf(&b, "Online deployment (§2.1, at-delivery verdicts): %s backend, %s, %s retraining (lag %d), %s, %s.\n",
		r.Cfg.BackendName(), serving, r.Cfg.Retraining, r.Cfg.RetrainLag,
		describeAttack(r.Cfg), describeDefense(r.Cfg))
	t := newTable("week", "store", "gen", "atk in", "atk rej", "org rej", "ham lost", "spam caught")
	crashed := false
	for _, w := range r.Weeks {
		gen := fmt.Sprintf("%d", w.Generation)
		if w.Resumed {
			gen += "*"
			crashed = true
		}
		t.addRow(
			fmt.Sprintf("%d", w.Week),
			fmt.Sprintf("%d", w.MailStoreSize),
			gen,
			fmt.Sprintf("%d", w.AttackArrived),
			fmt.Sprintf("%d", w.AttackRejected),
			fmt.Sprintf("%d", w.OrganicRejected),
			fmt.Sprintf("%.1f%%", 100*w.Delivered.HamMisclassifiedRate()),
			fmt.Sprintf("%.1f%%", 100*(1-w.Delivered.SpamMisclassifiedRate())))
	}
	b.WriteString(t.String())
	if crashed {
		b.WriteString("(* = generation resumed from the checkpoint store after the simulated crash)\n")
	}
	if len(r.Weeks) > 0 && r.Weeks[0].Admission != nil {
		b.WriteByte('\n')
		renderAdmissionTable(&b, r)
	}
	if len(r.Weeks) > 0 && r.Weeks[0].ByShard != nil {
		b.WriteByte('\n')
		renderShardTable(&b, r)
	}
	return b.String()
}

// table is a minimal aligned-column renderer (duplicated from the
// experiments package to keep scenario free of that dependency).
type table struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *table { return &table{header: header} }

func (t *table) addRow(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
