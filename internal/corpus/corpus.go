// Package corpus manages labeled email collections: stratified
// sampling of training inboxes with a chosen spam prevalence, K-fold
// cross-validation splits, and mbox-pair persistence. It mirrors the
// experimental methodology of the paper's §4.1: the TREC-style source
// corpus is sampled into inboxes, which are split into train/test
// folds; attacks inject messages into the training side only.
package corpus

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/mail"
	"repro/internal/stats"
)

// Example is one labeled message.
type Example struct {
	Msg  *mail.Message
	Spam bool
}

// Corpus is an ordered collection of labeled messages. Order matters:
// every downstream split and sample is deterministic given the corpus
// order and an RNG.
type Corpus struct {
	Examples []Example
}

// New returns a corpus over the given examples (the slice is adopted,
// not copied).
func New(examples []Example) *Corpus { return &Corpus{Examples: examples} }

// FromMessages builds a corpus from separate ham and spam message
// slices, ham first.
func FromMessages(ham, spam []*mail.Message) *Corpus {
	ex := make([]Example, 0, len(ham)+len(spam))
	for _, m := range ham {
		ex = append(ex, Example{Msg: m, Spam: false})
	}
	for _, m := range spam {
		ex = append(ex, Example{Msg: m, Spam: true})
	}
	return New(ex)
}

// Len returns the number of messages.
func (c *Corpus) Len() int { return len(c.Examples) }

// NumSpam returns the number of spam messages.
func (c *Corpus) NumSpam() int {
	n := 0
	for _, e := range c.Examples {
		if e.Spam {
			n++
		}
	}
	return n
}

// NumHam returns the number of ham messages.
func (c *Corpus) NumHam() int { return c.Len() - c.NumSpam() }

// Ham returns the ham messages in corpus order.
func (c *Corpus) Ham() []*mail.Message { return c.byLabel(false) }

// Spam returns the spam messages in corpus order.
func (c *Corpus) Spam() []*mail.Message { return c.byLabel(true) }

func (c *Corpus) byLabel(spam bool) []*mail.Message {
	var out []*mail.Message
	for _, e := range c.Examples {
		if e.Spam == spam {
			out = append(out, e.Msg)
		}
	}
	return out
}

// Add appends one labeled message.
func (c *Corpus) Add(m *mail.Message, spam bool) {
	c.Examples = append(c.Examples, Example{Msg: m, Spam: spam})
}

// Append appends every example of other.
func (c *Corpus) Append(other *Corpus) {
	c.Examples = append(c.Examples, other.Examples...)
}

// Clone returns a shallow copy (examples share messages, which are
// treated as immutable throughout the repository).
func (c *Corpus) Clone() *Corpus {
	ex := make([]Example, len(c.Examples))
	copy(ex, c.Examples)
	return New(ex)
}

// Shuffle permutes the corpus in place.
func (c *Corpus) Shuffle(rng *stats.RNG) {
	rng.Shuffle(len(c.Examples), func(i, j int) {
		c.Examples[i], c.Examples[j] = c.Examples[j], c.Examples[i]
	})
}

// SampleInbox draws a stratified random inbox of n messages with the
// given spam prevalence (fraction of spam, rounded to the nearest
// message), without replacement. It errors if either class pool is
// too small.
func (c *Corpus) SampleInbox(rng *stats.RNG, n int, spamPrevalence float64) (*Corpus, error) {
	if n < 0 {
		return nil, fmt.Errorf("corpus: SampleInbox n = %d", n)
	}
	if spamPrevalence < 0 || spamPrevalence > 1 {
		return nil, fmt.Errorf("corpus: SampleInbox prevalence = %v", spamPrevalence)
	}
	nSpam := int(float64(n)*spamPrevalence + 0.5)
	nHam := n - nSpam
	ham, spam := c.Ham(), c.Spam()
	if nHam > len(ham) {
		return nil, fmt.Errorf("corpus: need %d ham, have %d", nHam, len(ham))
	}
	if nSpam > len(spam) {
		return nil, fmt.Errorf("corpus: need %d spam, have %d", nSpam, len(spam))
	}
	out := &Corpus{Examples: make([]Example, 0, n)}
	for _, i := range rng.Sample(len(ham), nHam) {
		out.Add(ham[i], false)
	}
	for _, i := range rng.Sample(len(spam), nSpam) {
		out.Add(spam[i], true)
	}
	out.Shuffle(rng)
	return out, nil
}

// Fold is one train/test epoch of a cross-validation.
type Fold struct {
	Train *Corpus
	Test  *Corpus
}

// KFold partitions the corpus into k folds by striding (example i
// goes to test fold i mod k), which preserves class balance for a
// shuffled corpus. Each returned fold trains on the other k−1 parts.
// It errors unless 2 ≤ k ≤ Len().
func (c *Corpus) KFold(k int) ([]Fold, error) {
	if k < 2 || k > c.Len() {
		return nil, fmt.Errorf("corpus: KFold k = %d with %d examples", k, c.Len())
	}
	folds := make([]Fold, k)
	for i := range folds {
		folds[i].Train = &Corpus{}
		folds[i].Test = &Corpus{}
	}
	for i, e := range c.Examples {
		f := i % k
		folds[f].Test.Examples = append(folds[f].Test.Examples, e)
		for j := range folds {
			if j != f {
				folds[j].Train.Examples = append(folds[j].Train.Examples, e)
			}
		}
	}
	return folds, nil
}

// SplitFraction splits the corpus into a head containing round(frac ·
// Len()) examples and the remaining tail, preserving order. The
// dynamic threshold defense uses it to carve a validation half off
// the training set.
func (c *Corpus) SplitFraction(frac float64) (head, tail *Corpus, err error) {
	if frac < 0 || frac > 1 {
		return nil, nil, fmt.Errorf("corpus: SplitFraction frac = %v", frac)
	}
	n := int(float64(c.Len())*frac + 0.5)
	return New(c.Examples[:n:n]), New(c.Examples[n:]), nil
}

// SaveMboxPair writes the corpus as ham.mbox and spam.mbox in dir,
// creating the directory if needed.
func (c *Corpus) SaveMboxPair(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, msgs []*mail.Message) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		w := mail.NewMboxWriter(f)
		for _, m := range msgs {
			if err := w.WriteMessage(m); err != nil {
				f.Close()
				return err
			}
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write("ham.mbox", c.Ham()); err != nil {
		return err
	}
	return write("spam.mbox", c.Spam())
}

// LoadMboxPair reads a corpus previously written by SaveMboxPair.
func LoadMboxPair(dir string) (*Corpus, error) {
	read := func(name string) ([]*mail.Message, error) {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return mail.NewMboxReader(f).ReadAll()
	}
	ham, err := read("ham.mbox")
	if err != nil {
		return nil, err
	}
	spam, err := read("spam.mbox")
	if err != nil {
		return nil, err
	}
	return FromMessages(ham, spam), nil
}

// WriteMbox writes all messages (both labels) to a single mbox stream.
func (c *Corpus) WriteMbox(w io.Writer) error {
	mw := mail.NewMboxWriter(w)
	for _, e := range c.Examples {
		if err := mw.WriteMessage(e.Msg); err != nil {
			return err
		}
	}
	return mw.Flush()
}
