package corpus

import (
	"math"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/mail"
	"repro/internal/stats"
)

// tiny builds a corpus of nHam ham and nSpam spam with numbered bodies.
func tiny(nHam, nSpam int) *Corpus {
	c := &Corpus{}
	for i := 0; i < nHam; i++ {
		m := &mail.Message{Body: "ham body\n"}
		m.Header.Add("Subject", "ham")
		m.Header.Add("X-Index", string(rune('a'+i%26)))
		c.Add(m, false)
	}
	for i := 0; i < nSpam; i++ {
		m := &mail.Message{Body: "spam body\n"}
		m.Header.Add("Subject", "spam")
		c.Add(m, true)
	}
	return c
}

func TestCounts(t *testing.T) {
	c := tiny(7, 3)
	if c.Len() != 10 || c.NumHam() != 7 || c.NumSpam() != 3 {
		t.Errorf("counts = %d/%d/%d", c.Len(), c.NumHam(), c.NumSpam())
	}
	if len(c.Ham()) != 7 || len(c.Spam()) != 3 {
		t.Error("Ham()/Spam() wrong lengths")
	}
}

func TestFromMessages(t *testing.T) {
	ham := []*mail.Message{{Body: "h\n"}}
	spam := []*mail.Message{{Body: "s1\n"}, {Body: "s2\n"}}
	c := FromMessages(ham, spam)
	if c.NumHam() != 1 || c.NumSpam() != 2 {
		t.Errorf("counts = %d ham %d spam", c.NumHam(), c.NumSpam())
	}
}

func TestCloneShallow(t *testing.T) {
	c := tiny(2, 2)
	d := c.Clone()
	d.Add(&mail.Message{}, true)
	if c.Len() != 4 || d.Len() != 5 {
		t.Error("clone shares example slice")
	}
}

func TestShuffleDeterministic(t *testing.T) {
	a, b := tiny(50, 50), tiny(50, 50)
	a.Shuffle(stats.NewRNG(5))
	b.Shuffle(stats.NewRNG(5))
	for i := range a.Examples {
		if a.Examples[i].Spam != b.Examples[i].Spam {
			t.Fatal("shuffle not deterministic")
		}
	}
}

func TestSampleInboxPrevalence(t *testing.T) {
	c := tiny(1000, 1000)
	rng := stats.NewRNG(1)
	for _, prev := range []float64{0.5, 0.75, 0.25} {
		inbox, err := c.SampleInbox(rng, 400, prev)
		if err != nil {
			t.Fatal(err)
		}
		if inbox.Len() != 400 {
			t.Fatalf("inbox size = %d", inbox.Len())
		}
		want := int(400*prev + 0.5)
		if inbox.NumSpam() != want {
			t.Errorf("prevalence %v: spam = %d, want %d", prev, inbox.NumSpam(), want)
		}
	}
}

func TestSampleInboxWithoutReplacement(t *testing.T) {
	c := tiny(100, 100)
	inbox, err := c.SampleInbox(stats.NewRNG(2), 200, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[*mail.Message]bool{}
	for _, e := range inbox.Examples {
		if seen[e.Msg] {
			t.Fatal("message sampled twice")
		}
		seen[e.Msg] = true
	}
}

func TestSampleInboxErrors(t *testing.T) {
	c := tiny(10, 10)
	r := stats.NewRNG(3)
	if _, err := c.SampleInbox(r, 30, 0.5); err == nil {
		t.Error("oversampling succeeded")
	}
	if _, err := c.SampleInbox(r, 10, 1.5); err == nil {
		t.Error("bad prevalence succeeded")
	}
	if _, err := c.SampleInbox(r, -1, 0.5); err == nil {
		t.Error("negative n succeeded")
	}
	if _, err := c.SampleInbox(r, 8, 1.0); err != nil {
		t.Errorf("all-spam inbox failed: %v", err)
	}
}

func TestKFoldPartition(t *testing.T) {
	c := tiny(30, 30)
	c.Shuffle(stats.NewRNG(4))
	folds, err := c.KFold(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 5 {
		t.Fatalf("%d folds", len(folds))
	}
	testCount := map[*mail.Message]int{}
	for i, f := range folds {
		if f.Train.Len()+f.Test.Len() != c.Len() {
			t.Errorf("fold %d sizes %d+%d != %d", i, f.Train.Len(), f.Test.Len(), c.Len())
		}
		inTrain := map[*mail.Message]bool{}
		for _, e := range f.Train.Examples {
			inTrain[e.Msg] = true
		}
		for _, e := range f.Test.Examples {
			if inTrain[e.Msg] {
				t.Errorf("fold %d: message in both train and test", i)
			}
			testCount[e.Msg]++
		}
	}
	// Every example must be tested exactly once across folds.
	if len(testCount) != c.Len() {
		t.Errorf("only %d of %d examples ever tested", len(testCount), c.Len())
	}
	for _, n := range testCount {
		if n != 1 {
			t.Error("an example appears in multiple test folds")
		}
	}
}

func TestKFoldBalance(t *testing.T) {
	c := tiny(100, 100)
	c.Shuffle(stats.NewRNG(6))
	folds, _ := c.KFold(10)
	for i, f := range folds {
		prev := float64(f.Test.NumSpam()) / float64(f.Test.Len())
		if math.Abs(prev-0.5) > 0.2 {
			t.Errorf("fold %d test prevalence %v", i, prev)
		}
	}
}

func TestKFoldErrors(t *testing.T) {
	c := tiny(3, 3)
	if _, err := c.KFold(1); err == nil {
		t.Error("k=1 succeeded")
	}
	if _, err := c.KFold(7); err == nil {
		t.Error("k>len succeeded")
	}
}

func TestSplitFraction(t *testing.T) {
	c := tiny(6, 4)
	head, tail, err := c.SplitFraction(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if head.Len() != 5 || tail.Len() != 5 {
		t.Errorf("split = %d/%d", head.Len(), tail.Len())
	}
	if _, _, err := c.SplitFraction(1.2); err == nil {
		t.Error("bad fraction succeeded")
	}
	h2, t2, _ := c.SplitFraction(0)
	if h2.Len() != 0 || t2.Len() != 10 {
		t.Error("zero split wrong")
	}
}

func TestMboxPairRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "corpus")
	c := tiny(5, 3)
	if err := c.SaveMboxPair(dir); err != nil {
		t.Fatal(err)
	}
	got, err := LoadMboxPair(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumHam() != 5 || got.NumSpam() != 3 {
		t.Errorf("round trip = %d ham %d spam", got.NumHam(), got.NumSpam())
	}
	if got.Ham()[0].Subject() != "ham" {
		t.Error("subject lost in round trip")
	}
}

func TestLoadMboxPairMissing(t *testing.T) {
	if _, err := LoadMboxPair(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("loading missing dir succeeded")
	}
}

// Property: KFold train/test sizes are as balanced as possible.
func TestQuickKFoldSizes(t *testing.T) {
	f := func(nRaw, kRaw uint8) bool {
		n := 4 + int(nRaw)%200
		k := 2 + int(kRaw)%8
		if k > n {
			return true
		}
		c := tiny(n/2, n-n/2)
		folds, err := c.KFold(k)
		if err != nil {
			return false
		}
		total := 0
		for _, f := range folds {
			total += f.Test.Len()
			if f.Test.Len() < n/k || f.Test.Len() > n/k+1 {
				return false
			}
		}
		return total == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
