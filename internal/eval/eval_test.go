package eval

import (
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/corpus"
	"repro/internal/graham"
	"repro/internal/mail"
	"repro/internal/sbayes"
)

func TestConfusionObserve(t *testing.T) {
	var c Confusion
	c.Observe(false, sbayes.Ham)
	c.Observe(false, sbayes.Unsure)
	c.Observe(false, sbayes.Spam)
	c.Observe(true, sbayes.Ham)
	c.Observe(true, sbayes.Unsure)
	c.Observe(true, sbayes.Spam)
	c.Observe(true, sbayes.Spam)
	if c.HamAsHam != 1 || c.HamAsUnsure != 1 || c.HamAsSpam != 1 {
		t.Errorf("ham counts wrong: %+v", c)
	}
	if c.SpamAsHam != 1 || c.SpamAsUnsure != 1 || c.SpamAsSpam != 2 {
		t.Errorf("spam counts wrong: %+v", c)
	}
	if c.NumHam() != 3 || c.NumSpam() != 4 {
		t.Errorf("totals wrong: %d/%d", c.NumHam(), c.NumSpam())
	}
}

// TestConfusionObserveClampsUnknownLabels is the regression for the
// out-of-range-label bug: the old default: arms counted any label
// outside the defined three as spam, silently inflating the spam
// columns. Unknown labels must clamp to Unsure, matching the engine's
// own counter clamping.
func TestConfusionObserveClampsUnknownLabels(t *testing.T) {
	for _, label := range []sbayes.Label{-1, 3, 7, -128, 127} {
		var c Confusion
		c.Observe(false, label)
		c.Observe(true, label)
		if c.HamAsUnsure != 1 || c.SpamAsUnsure != 1 {
			t.Errorf("Observe(Label(%d)) counted as %+v, want unsure/unsure", label, c)
		}
		if c.HamAsSpam != 0 || c.SpamAsSpam != 0 {
			t.Errorf("Observe(Label(%d)) leaked into the spam columns: %+v", label, c)
		}
		if c.NumHam() != 1 || c.NumSpam() != 1 {
			t.Errorf("Observe(Label(%d)) lost observations: %+v", label, c)
		}
	}
}

func TestConfusionRates(t *testing.T) {
	c := Confusion{HamAsHam: 6, HamAsUnsure: 3, HamAsSpam: 1,
		SpamAsHam: 1, SpamAsUnsure: 1, SpamAsSpam: 8}
	if got := c.HamAsSpamRate(); got != 0.1 {
		t.Errorf("HamAsSpamRate = %v", got)
	}
	if got := c.HamAsUnsureRate(); got != 0.3 {
		t.Errorf("HamAsUnsureRate = %v", got)
	}
	if got := c.HamMisclassifiedRate(); got != 0.4 {
		t.Errorf("HamMisclassifiedRate = %v", got)
	}
	if got := c.SpamAsHamRate(); got != 0.1 {
		t.Errorf("SpamAsHamRate = %v", got)
	}
	if got := c.SpamAsUnsureRate(); got != 0.1 {
		t.Errorf("SpamAsUnsureRate = %v", got)
	}
	if got := c.SpamMisclassifiedRate(); got != 0.2 {
		t.Errorf("SpamMisclassifiedRate = %v", got)
	}
	if got := c.Accuracy(); got != 0.7 {
		t.Errorf("Accuracy = %v", got)
	}
}

func TestConfusionZeroSafe(t *testing.T) {
	var c Confusion
	for _, v := range []float64{
		c.HamAsSpamRate(), c.HamMisclassifiedRate(), c.SpamAsHamRate(),
		c.SpamMisclassifiedRate(), c.Accuracy(),
	} {
		if v != 0 {
			t.Errorf("empty confusion rate = %v", v)
		}
	}
}

func TestConfusionAdd(t *testing.T) {
	a := Confusion{HamAsHam: 1, SpamAsSpam: 2}
	b := Confusion{HamAsHam: 3, HamAsSpam: 1, SpamAsUnsure: 4}
	a.Add(b)
	if a.HamAsHam != 4 || a.HamAsSpam != 1 || a.SpamAsUnsure != 4 || a.SpamAsSpam != 2 {
		t.Errorf("Add = %+v", a)
	}
}

func TestConfusionString(t *testing.T) {
	c := Confusion{HamAsHam: 5}
	if !strings.Contains(c.String(), "5/0/0") {
		t.Errorf("String = %q", c.String())
	}
}

// buildTinyCorpus returns a trivially separable corpus.
func buildTinyCorpus(n int) *corpus.Corpus {
	c := &corpus.Corpus{}
	for i := 0; i < n; i++ {
		c.Add(&mail.Message{Body: "meeting budget forecast agenda\n"}, false)
		c.Add(&mail.Message{Body: "lottery winner pills casino\n"}, true)
	}
	return c
}

func TestTrainAndEvaluate(t *testing.T) {
	c := buildTinyCorpus(20)
	f := TrainFilter(c, sbayes.DefaultOptions(), nil)
	conf := Evaluate(f, c)
	if conf.NumHam() != 20 || conf.NumSpam() != 20 {
		t.Fatalf("totals = %d/%d", conf.NumHam(), conf.NumSpam())
	}
	if conf.HamAsHam != 20 || conf.SpamAsSpam != 20 {
		t.Errorf("separable corpus not perfectly classified: %+v", conf)
	}
}

func TestTokenizeCorpusAndEvaluateTokenSet(t *testing.T) {
	c := buildTinyCorpus(10)
	f := TrainFilter(c, sbayes.DefaultOptions(), nil)
	ts := TokenizeCorpus(c, nil)
	if len(ts) != c.Len() {
		t.Fatalf("token set size %d", len(ts))
	}
	direct := Evaluate(f, c)
	viaTokens := EvaluateTokenSet(f, ts)
	if direct != viaTokens {
		t.Errorf("tokenized evaluation differs: %+v vs %+v", direct, viaTokens)
	}
}

func TestEvaluateBatchMatchesSerial(t *testing.T) {
	c := buildTinyCorpus(40)
	f := TrainFilter(c, sbayes.DefaultOptions(), nil)
	serial := Evaluate(f, c)
	for _, workers := range []int{0, 1, 2, 7, 1000} {
		if got := EvaluateBatch(f, c, workers); got != serial {
			t.Errorf("workers=%d: %+v != serial %+v", workers, got, serial)
		}
	}
	// Empty corpus is safe at any worker count.
	if got := EvaluateBatch(f, &corpus.Corpus{}, 4); got != (Confusion{}) {
		t.Errorf("empty corpus confusion %+v", got)
	}
}

func TestEvaluateTokenSetBatchMatchesSerial(t *testing.T) {
	c := buildTinyCorpus(30)
	f := TrainFilter(c, sbayes.DefaultOptions(), nil)
	ts := TokenizeCorpus(c, nil)
	serial := EvaluateTokenSet(f, ts)
	for _, workers := range []int{0, 1, 3, 64} {
		if got := EvaluateTokenSetBatch(f, ts, workers); got != serial {
			t.Errorf("workers=%d: %+v != serial %+v", workers, got, serial)
		}
	}
}

func TestTrainAndEvaluateGenericBackend(t *testing.T) {
	// The evaluation harness accepts any Classifier, not just the
	// SpamBayes filter; Graham's binary verdict lands only in the
	// Ham/Spam cells.
	c := buildTinyCorpus(20)
	g := graham.NewDefault()
	Train(g, c)
	conf := EvaluateBatch(g, c, 4)
	if conf.NumHam() != 20 || conf.NumSpam() != 20 {
		t.Fatalf("totals = %d/%d", conf.NumHam(), conf.NumSpam())
	}
	if conf.HamAsUnsure != 0 || conf.SpamAsUnsure != 0 {
		t.Errorf("graham produced unsure verdicts: %+v", conf)
	}
	if conf.HamAsHam != 20 || conf.SpamAsSpam != 20 {
		t.Errorf("separable corpus not perfectly classified: %+v", conf)
	}
}

func TestParallelCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		var hits [100]int32
		Parallel(len(hits), workers, func(i int) {
			atomic.AddInt32(&hits[i], 1)
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
	// n=0 must not hang or call fn.
	Parallel(0, 4, func(i int) { t.Fatal("fn called for n=0") })
}

func TestParallelDeterministicAggregation(t *testing.T) {
	out := make([]int, 50)
	Parallel(len(out), 8, func(i int) { out[i] = i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}
