// Package eval provides the measurement layer of the experiment
// harness: three-way confusion matrices over the backend-generic
// verdicts, corpus tokenization caches, classifier training helpers,
// serial and parallel corpus evaluation, and a small deterministic
// parallel-for used to run cross-validation folds concurrently.
// Everything is written against engine.Classifier, so the same
// harness measures any registered backend.
//
// The paper's §2.3 observation drives the metric design: because of
// the unsure verdict, plain false positive/negative rates are not
// enough — ham-as-unsure is "nearly as bad for the user as false
// positives", so every table tracks ham-as-spam and
// ham-as-(spam∪unsure) separately (Figure 1's dashed and solid
// lines).
package eval

import (
	"context"
	"fmt"
	"runtime"

	"repro/internal/corpus"
	"repro/internal/engine"
	"repro/internal/sbayes"
	"repro/internal/tokenize"
)

// Confusion counts verdicts by true class.
type Confusion struct {
	HamAsHam     int
	HamAsUnsure  int
	HamAsSpam    int
	SpamAsHam    int
	SpamAsUnsure int
	SpamAsSpam   int
}

// Observe tallies one classification. A label outside the defined
// three is clamped to Unsure — matching the engine's own counter
// clamping — rather than silently counted as spam, so a buggy backend
// cannot inflate the spam columns.
func (c *Confusion) Observe(actualSpam bool, predicted engine.Label) {
	if actualSpam {
		switch predicted {
		case engine.Ham:
			c.SpamAsHam++
		case engine.Spam:
			c.SpamAsSpam++
		default:
			c.SpamAsUnsure++
		}
	} else {
		switch predicted {
		case engine.Ham:
			c.HamAsHam++
		case engine.Spam:
			c.HamAsSpam++
		default:
			c.HamAsUnsure++
		}
	}
}

// Add accumulates another confusion matrix into c.
func (c *Confusion) Add(o Confusion) {
	c.HamAsHam += o.HamAsHam
	c.HamAsUnsure += o.HamAsUnsure
	c.HamAsSpam += o.HamAsSpam
	c.SpamAsHam += o.SpamAsHam
	c.SpamAsUnsure += o.SpamAsUnsure
	c.SpamAsSpam += o.SpamAsSpam
}

// NumHam returns the number of true-ham observations.
func (c Confusion) NumHam() int { return c.HamAsHam + c.HamAsUnsure + c.HamAsSpam }

// NumSpam returns the number of true-spam observations.
func (c Confusion) NumSpam() int { return c.SpamAsHam + c.SpamAsUnsure + c.SpamAsSpam }

// rate guards division by zero.
func rate(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// HamAsSpamRate is the fraction of ham classified spam (Figure 1's
// dashed lines).
func (c Confusion) HamAsSpamRate() float64 { return rate(c.HamAsSpam, c.NumHam()) }

// HamAsUnsureRate is the fraction of ham classified unsure.
func (c Confusion) HamAsUnsureRate() float64 { return rate(c.HamAsUnsure, c.NumHam()) }

// HamMisclassifiedRate is the fraction of ham classified spam or
// unsure (Figure 1's solid lines).
func (c Confusion) HamMisclassifiedRate() float64 {
	return rate(c.HamAsSpam+c.HamAsUnsure, c.NumHam())
}

// SpamAsHamRate is the fraction of spam classified ham.
func (c Confusion) SpamAsHamRate() float64 { return rate(c.SpamAsHam, c.NumSpam()) }

// SpamAsUnsureRate is the fraction of spam classified unsure.
func (c Confusion) SpamAsUnsureRate() float64 { return rate(c.SpamAsUnsure, c.NumSpam()) }

// SpamMisclassifiedRate is the fraction of spam classified ham or
// unsure.
func (c Confusion) SpamMisclassifiedRate() float64 {
	return rate(c.SpamAsHam+c.SpamAsUnsure, c.NumSpam())
}

// Accuracy is the fraction of messages given their true label.
func (c Confusion) Accuracy() float64 {
	return rate(c.HamAsHam+c.SpamAsSpam, c.NumHam()+c.NumSpam())
}

// String renders the matrix compactly.
func (c Confusion) String() string {
	return fmt.Sprintf("ham(h/u/s)=%d/%d/%d spam(h/u/s)=%d/%d/%d",
		c.HamAsHam, c.HamAsUnsure, c.HamAsSpam,
		c.SpamAsHam, c.SpamAsUnsure, c.SpamAsSpam)
}

// Labeled is a pre-tokenized labeled message.
type Labeled struct {
	Tokens []string
	Spam   bool
}

// TokenSet is a pre-tokenized corpus; classification sweeps re-score
// the same test messages many times, so tokenizing once matters.
type TokenSet []Labeled

// TokenizeCorpus tokenizes every message of c with tok (nil selects
// the default tokenizer).
func TokenizeCorpus(c *corpus.Corpus, tok *tokenize.Tokenizer) TokenSet {
	if tok == nil {
		tok = tokenize.Default()
	}
	out := make(TokenSet, 0, c.Len())
	for _, e := range c.Examples {
		out = append(out, Labeled{Tokens: tok.TokenSet(e.Msg), Spam: e.Spam})
	}
	return out
}

// EvaluateTokenSet scores a tokenized corpus under any classifier
// that accepts pre-tokenized messages.
func EvaluateTokenSet(c engine.TokenClassifier, ts TokenSet) Confusion {
	var conf Confusion
	for _, ex := range ts {
		label, _ := c.ClassifyTokens(ex.Tokens)
		conf.Observe(ex.Spam, label)
	}
	return conf
}

// EvaluateTokenSetBatch is EvaluateTokenSet sharded across up to
// workers goroutines (GOMAXPROCS when workers <= 0). The classifier
// must tolerate concurrent ClassifyTokens calls. The sum of per-shard
// confusions is order-independent, so the result is deterministic.
func EvaluateTokenSetBatch(c engine.TokenClassifier, ts TokenSet, workers int) Confusion {
	confs := shardedConfusions(len(ts), &workers)
	Parallel(workers, workers, func(w int) {
		for i := w; i < len(ts); i += workers {
			label, _ := c.ClassifyTokens(ts[i].Tokens)
			confs[w].Observe(ts[i].Spam, label)
		}
	})
	return sumConfusions(confs)
}

// LabeledStream is a once-tokenized labeled message — the stream
// counterpart of Labeled, carrying occurrence counts and the stream
// digest instead of a flat token slice.
type LabeledStream struct {
	Stream *tokenize.TokenStream
	Spam   bool
}

// StreamSet is a once-tokenized corpus for the stream scoring path.
type StreamSet []LabeledStream

// StreamCorpus tokenizes every message of c exactly once with tok
// (nil selects the default tokenizer) into a StreamSet.
func StreamCorpus(c *corpus.Corpus, tok *tokenize.Tokenizer) StreamSet {
	if tok == nil {
		tok = tokenize.Default()
	}
	out := make(StreamSet, 0, c.Len())
	for _, e := range c.Examples {
		out = append(out, LabeledStream{Stream: tok.Stream(e.Msg), Spam: e.Spam})
	}
	return out
}

// EvaluateStreamSet scores a once-tokenized corpus under any
// classifier that consumes token streams.
func EvaluateStreamSet(c engine.StreamClassifier, ss StreamSet) Confusion {
	var conf Confusion
	for _, ex := range ss {
		label, _ := c.ClassifyTokenStream(ex.Stream)
		conf.Observe(ex.Spam, label)
	}
	return conf
}

// EvaluateStreamSetBatch is EvaluateStreamSet sharded across up to
// workers goroutines (GOMAXPROCS when workers <= 0). The classifier
// must tolerate concurrent ClassifyTokenStream calls; TokenStreams are
// immutable, so sharing them across shards is free.
func EvaluateStreamSetBatch(c engine.StreamClassifier, ss StreamSet, workers int) Confusion {
	confs := shardedConfusions(len(ss), &workers)
	Parallel(workers, workers, func(w int) {
		for i := w; i < len(ss); i += workers {
			label, _ := c.ClassifyTokenStream(ss[i].Stream)
			confs[w].Observe(ss[i].Spam, label)
		}
	})
	return sumConfusions(confs)
}

// Evaluate scores a corpus under any classifier.
func Evaluate(c engine.Classifier, test *corpus.Corpus) Confusion {
	var conf Confusion
	for _, e := range test.Examples {
		label, _ := c.Classify(e.Msg)
		conf.Observe(e.Spam, label)
	}
	return conf
}

// EvaluateBatch is Evaluate sharded across up to workers goroutines
// (GOMAXPROCS when workers <= 0). The classifier must tolerate
// concurrent Classify calls — every backend does, as long as nothing
// trains it mid-batch.
func EvaluateBatch(c engine.Classifier, test *corpus.Corpus, workers int) Confusion {
	confs := shardedConfusions(test.Len(), &workers)
	Parallel(workers, workers, func(w int) {
		for i := w; i < len(test.Examples); i += workers {
			e := test.Examples[i]
			label, _ := c.Classify(e.Msg)
			confs[w].Observe(e.Spam, label)
		}
	})
	return sumConfusions(confs)
}

// shardedConfusions clamps workers to [1, n] (defaulting to
// GOMAXPROCS) and allocates one accumulator per shard.
func shardedConfusions(n int, workers *int) []Confusion {
	if *workers <= 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	if *workers > n {
		*workers = n
	}
	if *workers < 1 {
		*workers = 1
	}
	return make([]Confusion, *workers)
}

func sumConfusions(confs []Confusion) Confusion {
	var total Confusion
	for _, c := range confs {
		total.Add(c)
	}
	return total
}

// Train trains any classifier on a corpus in corpus order.
func Train(c engine.Classifier, train *corpus.Corpus) {
	for _, e := range train.Examples {
		c.Learn(e.Msg, e.Spam)
	}
}

// TrainBackend constructs a fresh classifier from a backend factory
// and trains it on a corpus.
func TrainBackend(newClassifier engine.Factory, train *corpus.Corpus) engine.Classifier {
	c := newClassifier()
	Train(c, train)
	return c
}

// TrainFilter trains a fresh SpamBayes filter on a corpus. It remains
// the concrete-typed helper for code that needs sbayes-only surface
// (Clone, LearnTokens); backend-generic code uses Train.
func TrainFilter(train *corpus.Corpus, opts sbayes.Options, tok *tokenize.Tokenizer) *sbayes.Filter {
	f := sbayes.New(opts, tok)
	Train(f, train)
	return f
}

// Parallel runs fn(0..n-1) on up to workers goroutines (n if workers
// <= 0) and waits for completion. Each index is processed exactly
// once; fn must be safe to run concurrently for distinct indices.
// Results are deterministic as long as fn(i) writes only to
// index-i-owned state. Scheduling is engine.ParallelFor's
// atomic-cursor handout — one shared implementation instead of a
// per-index channel send, whose context switch per item dominates
// small per-item work.
func Parallel(n, workers int, fn func(i int)) {
	engine.ParallelFor(context.Background(), n, workers, fn)
}
