package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (NaN if fewer
// than two observations). Computed with the two-pass algorithm for
// numerical stability.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7, the R/NumPy default).
// It returns NaN on empty input and panics if q is outside [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if q < 0 || q > 1 || math.IsNaN(q) {
		panic(fmt.Sprintf("stats: Quantile with q = %v", q))
	}
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	sorted := make([]float64, n)
	copy(sorted, xs)
	sort.Float64s(sorted)
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary holds the descriptive statistics the experiment tables report.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Median float64
	Max    float64
}

// Summarize computes a Summary of xs. The zero Summary is returned for
// empty input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Median: Quantile(xs, 0.5),
		Min:    math.Inf(1),
		Max:    math.Inf(-1),
	}
	if len(xs) >= 2 {
		s.StdDev = StdDev(xs)
	}
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	return s
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4f sd=%.4f min=%.4f med=%.4f max=%.4f",
		s.N, s.Mean, s.StdDev, s.Min, s.Median, s.Max)
}

// Histogram is a fixed-range, equal-width histogram. It backs the
// textual rendering of the Figure 4 score distributions.
type Histogram struct {
	lo, hi  float64
	counts  []int
	n       int
	underLo int
	overHi  int
}

// NewHistogram creates a histogram over [lo, hi) with the given number
// of equal-width bins. It panics on degenerate arguments.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || !(hi > lo) {
		panic(fmt.Sprintf("stats: NewHistogram(%v, %v, %d)", lo, hi, bins))
	}
	return &Histogram{lo: lo, hi: hi, counts: make([]int, bins)}
}

// Add records one observation. Values below lo or at/above hi are
// tallied in the outlier counters (values exactly equal to hi land in
// the last bin, matching the common right-closed convention for the
// final bin).
func (h *Histogram) Add(x float64) {
	h.n++
	switch {
	case x < h.lo:
		h.underLo++
	case x > h.hi:
		h.overHi++
	case x == h.hi:
		h.counts[len(h.counts)-1]++
	default:
		bin := int((x - h.lo) / (h.hi - h.lo) * float64(len(h.counts)))
		if bin >= len(h.counts) { // guard against float rounding
			bin = len(h.counts) - 1
		}
		h.counts[bin]++
	}
}

// N returns the total number of observations (including outliers).
func (h *Histogram) N() int { return h.n }

// Counts returns a copy of the per-bin counts.
func (h *Histogram) Counts() []int {
	c := make([]int, len(h.counts))
	copy(c, h.counts)
	return c
}

// Bin returns the [lo, hi) bounds of bin i.
func (h *Histogram) Bin(i int) (lo, hi float64) {
	w := (h.hi - h.lo) / float64(len(h.counts))
	return h.lo + float64(i)*w, h.lo + float64(i+1)*w
}

// Render draws an ASCII bar chart with at most width characters of bar
// per bin, suitable for experiment logs.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 40
	}
	max := 0
	for _, c := range h.counts {
		if c > max {
			max = c
		}
	}
	var b strings.Builder
	for i, c := range h.counts {
		lo, hi := h.Bin(i)
		bar := 0
		if max > 0 {
			bar = c * width / max
		}
		fmt.Fprintf(&b, "[%5.2f,%5.2f) %6d %s\n", lo, hi, c, strings.Repeat("#", bar))
	}
	if h.underLo > 0 || h.overHi > 0 {
		fmt.Fprintf(&b, "outliers: %d below, %d above\n", h.underLo, h.overHi)
	}
	return b.String()
}
