package stats

import (
	"fmt"
	"math"
)

// Discrete samples from an arbitrary finite discrete distribution in
// O(1) per draw using Vose's alias method. Construction is O(n).
// Discrete is immutable after construction and safe for concurrent
// sampling as long as each goroutine uses its own RNG.
type Discrete struct {
	prob  []float64 // probability of using the primary outcome in each column
	alias []int32   // secondary outcome for each column
}

// NewDiscrete builds an alias table for the given non-negative weights.
// Weights need not be normalized. It returns an error if weights is
// empty, contains a negative/NaN/Inf entry, or sums to zero.
func NewDiscrete(weights []float64) (*Discrete, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("stats: NewDiscrete with empty weights")
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("stats: NewDiscrete weight[%d] = %v is invalid", i, w)
		}
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("stats: NewDiscrete weights sum to zero")
	}
	d := &Discrete{
		prob:  make([]float64, n),
		alias: make([]int32, n),
	}
	// Scale weights so the average column holds probability 1.
	scaled := make([]float64, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
	}
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, p := range scaled {
		if p < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		d.prob[s] = scaled[s]
		d.alias[s] = l
		scaled[l] = scaled[l] + scaled[s] - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Residual columns are (numerically) exactly 1.
	for _, l := range large {
		d.prob[l] = 1
		d.alias[l] = l
	}
	for _, s := range small {
		d.prob[s] = 1
		d.alias[s] = s
	}
	return d, nil
}

// Len returns the number of outcomes.
func (d *Discrete) Len() int { return len(d.prob) }

// Sample draws one outcome index in [0, Len()).
func (d *Discrete) Sample(r *RNG) int {
	col := int(r.Uint64n(uint64(len(d.prob))))
	if r.Float64() < d.prob[col] {
		return col
	}
	return int(d.alias[col])
}

// Zipf samples ranks 0..n-1 with P(rank = k) proportional to
// 1/(k+1)^s, the classic Zipf law used to model natural-language word
// frequencies. Sampling is O(1) via the embedded alias table.
type Zipf struct {
	*Discrete
	n int
	s float64
}

// NewZipf builds a Zipf sampler over n ranks with exponent s > 0.
func NewZipf(n int, s float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stats: NewZipf with n = %d", n)
	}
	if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return nil, fmt.Errorf("stats: NewZipf with s = %v", s)
	}
	w := make([]float64, n)
	for k := range w {
		w[k] = math.Pow(float64(k+1), -s)
	}
	d, err := NewDiscrete(w)
	if err != nil {
		return nil, err
	}
	return &Zipf{Discrete: d, n: n, s: s}, nil
}

// N returns the number of ranks.
func (z *Zipf) N() int { return z.n }

// Exponent returns the Zipf exponent s.
func (z *Zipf) Exponent() float64 { return z.s }

// ZipfWeights returns the unnormalized Zipf weights 1/(k+1)^s for
// k in [0, n). Useful for composing mixture distributions.
func ZipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	for k := range w {
		w[k] = math.Pow(float64(k+1), -s)
	}
	return w
}
