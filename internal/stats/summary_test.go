package stats

import (
	"math"
	"strings"
	"testing"
)

func TestMean(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	if got := Mean([]float64{2}); got != 2 {
		t.Errorf("Mean([2]) = %v", got)
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of singleton should be NaN")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); math.Abs(got-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, 32.0/7)
	}
	if got := StdDev(xs); math.Abs(got-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("StdDev = %v", got)
	}
	if got := Variance([]float64{3, 3, 3}); got != 0 {
		t.Errorf("Variance of constants = %v", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 4 {
		t.Errorf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); got != 2.5 {
		t.Errorf("median = %v, want 2.5", got)
	}
	if got := Quantile([]float64{7}, 0.3); got != 7 {
		t.Errorf("singleton quantile = %v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(nil) should be NaN")
	}
	// Input must not be mutated.
	if xs[0] != 3 || xs[1] != 1 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Quantile(q=%v) did not panic", q)
				}
			}()
			Quantile([]float64{1, 2}, q)
		}()
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("Summarize = %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("StdDev = %v", s.StdDev)
	}
	zero := Summarize(nil)
	if zero.N != 0 {
		t.Errorf("empty Summarize = %+v", zero)
	}
	if !strings.Contains(s.String(), "n=5") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	for _, x := range []float64{0, 0.1, 0.26, 0.49, 0.5, 0.74, 0.99, 1.0} {
		h.Add(x)
	}
	counts := h.Counts()
	want := []int{2, 2, 2, 2} // 1.0 lands in the last bin
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("bin %d = %d, want %d (all: %v)", i, counts[i], want[i], counts)
		}
	}
	if h.N() != 8 {
		t.Errorf("N = %d", h.N())
	}
}

func TestHistogramOutliers(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	h.Add(-0.5)
	h.Add(1.5)
	h.Add(0.5)
	if h.N() != 3 {
		t.Errorf("N = %d", h.N())
	}
	if got := h.Counts(); got[0]+got[1] != 1 {
		t.Errorf("in-range count = %v", got)
	}
	if !strings.Contains(h.Render(10), "outliers: 1 below, 1 above") {
		t.Errorf("Render missing outlier line:\n%s", h.Render(10))
	}
}

func TestHistogramBinBounds(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	lo, hi := h.Bin(2)
	if lo != 4 || hi != 6 {
		t.Errorf("Bin(2) = [%v, %v)", lo, hi)
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	for i := 0; i < 10; i++ {
		h.Add(0.25)
	}
	h.Add(0.75)
	out := h.Render(20)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("Render lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], strings.Repeat("#", 20)) {
		t.Errorf("max bin not full width: %q", lines[0])
	}
	// Zero-width defaults to 40.
	if !strings.Contains(NewHistogram(0, 1, 1).Render(0), "0") {
		t.Error("Render(0) produced nothing")
	}
}

func TestHistogramPanics(t *testing.T) {
	cases := []func(){
		func() { NewHistogram(0, 1, 0) },
		func() { NewHistogram(1, 1, 3) },
		func() { NewHistogram(2, 1, 3) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}
