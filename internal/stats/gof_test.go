package stats

import (
	"testing"
)

// Goodness-of-fit checks: the samplers are validated against their
// target distributions with a chi-square test evaluated by this
// package's own ChiSquareQ — the numeric substrate testing itself.

// chiSquareGOF returns the chi-square statistic for observed counts
// against expected probabilities.
func chiSquareGOF(observed []int, probs []float64, n int) float64 {
	x2 := 0.0
	for i, o := range observed {
		e := probs[i] * float64(n)
		if e == 0 {
			continue
		}
		d := float64(o) - e
		x2 += d * d / e
	}
	return x2
}

func TestDiscreteGoodnessOfFit(t *testing.T) {
	weights := []float64{5, 1, 3, 7, 2, 9, 4}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	probs := make([]float64, len(weights))
	for i, w := range weights {
		probs[i] = w / total
	}
	d, err := NewDiscrete(weights)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRNG(271828)
	const n = 200000
	counts := make([]int, len(weights))
	for i := 0; i < n; i++ {
		counts[d.Sample(r)]++
	}
	x2 := chiSquareGOF(counts, probs, n)
	// dof = k-1 = 6; reject only at p < 1e-6 to keep the test
	// deterministic-robust.
	dof := len(weights) - 1
	if dof%2 == 1 {
		dof++ // round up; conservative
	}
	if q := ChiSquareQ(x2, dof); q < 1e-6 {
		t.Errorf("alias sampler fails GOF: x2=%v q=%v counts=%v", x2, q, counts)
	}
}

func TestZipfGoodnessOfFit(t *testing.T) {
	const ranks = 20
	z, err := NewZipf(ranks, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	w := ZipfWeights(ranks, 1.1)
	total := 0.0
	for _, x := range w {
		total += x
	}
	probs := make([]float64, ranks)
	for i, x := range w {
		probs[i] = x / total
	}
	r := NewRNG(314159)
	const n = 200000
	counts := make([]int, ranks)
	for i := 0; i < n; i++ {
		counts[z.Sample(r)]++
	}
	x2 := chiSquareGOF(counts, probs, n)
	if q := ChiSquareQ(x2, ranks); q < 1e-6 { // dof 19 rounded to 20
		t.Errorf("zipf sampler fails GOF: x2=%v q=%v", x2, q)
	}
}

func TestUniformGoodnessOfFit(t *testing.T) {
	const k = 10
	r := NewRNG(161803)
	const n = 200000
	counts := make([]int, k)
	for i := 0; i < n; i++ {
		counts[r.Intn(k)]++
	}
	probs := make([]float64, k)
	for i := range probs {
		probs[i] = 1.0 / k
	}
	x2 := chiSquareGOF(counts, probs, n)
	if q := ChiSquareQ(x2, k); q < 1e-6 {
		t.Errorf("Intn fails GOF: x2=%v q=%v counts=%v", x2, q, counts)
	}
}
