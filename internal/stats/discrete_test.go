package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDiscreteErrors(t *testing.T) {
	cases := [][]float64{
		nil,
		{},
		{0, 0, 0},
		{1, -1},
		{math.NaN()},
		{math.Inf(1)},
	}
	for _, w := range cases {
		if _, err := NewDiscrete(w); err == nil {
			t.Errorf("NewDiscrete(%v) succeeded, want error", w)
		}
	}
}

func TestDiscreteSingleOutcome(t *testing.T) {
	d, err := NewDiscrete([]float64{3.5})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRNG(1)
	for i := 0; i < 100; i++ {
		if d.Sample(r) != 0 {
			t.Fatal("single-outcome distribution returned nonzero index")
		}
	}
}

func TestDiscreteZeroWeightNeverSampled(t *testing.T) {
	d, err := NewDiscrete([]float64{1, 0, 2, 0, 3})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRNG(2)
	for i := 0; i < 50000; i++ {
		v := d.Sample(r)
		if v == 1 || v == 3 {
			t.Fatalf("sampled zero-weight outcome %d", v)
		}
	}
}

func TestDiscreteFrequencies(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	d, err := NewDiscrete(weights)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRNG(3)
	const n = 400000
	counts := make([]int, len(weights))
	for i := 0; i < n; i++ {
		counts[d.Sample(r)]++
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	for i, w := range weights {
		want := w / total
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.005 {
			t.Errorf("outcome %d frequency = %v, want %v", i, got, want)
		}
	}
}

func TestDiscreteUnnormalizedEquivalence(t *testing.T) {
	// Scaling all weights must not change the sampled stream.
	a, _ := NewDiscrete([]float64{1, 2, 3})
	b, _ := NewDiscrete([]float64{10, 20, 30})
	ra, rb := NewRNG(4), NewRNG(4)
	for i := 0; i < 1000; i++ {
		if a.Sample(ra) != b.Sample(rb) {
			t.Fatal("scaled weights changed the sample stream")
		}
	}
}

func TestZipfErrors(t *testing.T) {
	if _, err := NewZipf(0, 1); err == nil {
		t.Error("NewZipf(0, 1) succeeded")
	}
	if _, err := NewZipf(10, 0); err == nil {
		t.Error("NewZipf(10, 0) succeeded")
	}
	if _, err := NewZipf(10, -1); err == nil {
		t.Error("NewZipf(10, -1) succeeded")
	}
	if _, err := NewZipf(10, math.NaN()); err == nil {
		t.Error("NewZipf(10, NaN) succeeded")
	}
}

func TestZipfRankOrdering(t *testing.T) {
	// Lower ranks must be sampled more often.
	z, err := NewZipf(50, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRNG(5)
	const n = 300000
	counts := make([]int, z.N())
	for i := 0; i < n; i++ {
		counts[z.Sample(r)]++
	}
	if counts[0] <= counts[10] || counts[10] <= counts[40] {
		t.Errorf("Zipf counts not decreasing: c0=%d c10=%d c40=%d",
			counts[0], counts[10], counts[40])
	}
	// Check the head frequency against theory within 10%.
	weights := ZipfWeights(50, 1.1)
	total := 0.0
	for _, w := range weights {
		total += w
	}
	want := weights[0] / total
	got := float64(counts[0]) / n
	if math.Abs(got-want)/want > 0.1 {
		t.Errorf("rank-0 frequency = %v, want %v", got, want)
	}
}

func TestZipfAccessors(t *testing.T) {
	z, err := NewZipf(123, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if z.N() != 123 {
		t.Errorf("N() = %d", z.N())
	}
	if z.Exponent() != 1.5 {
		t.Errorf("Exponent() = %v", z.Exponent())
	}
	if z.Len() != 123 {
		t.Errorf("Len() = %d", z.Len())
	}
}

func TestZipfWeightsShape(t *testing.T) {
	w := ZipfWeights(5, 2)
	if len(w) != 5 {
		t.Fatalf("len = %d", len(w))
	}
	for i := 1; i < len(w); i++ {
		if w[i] >= w[i-1] {
			t.Errorf("weights not strictly decreasing at %d: %v", i, w)
		}
	}
	if math.Abs(w[1]-0.25) > 1e-15 {
		t.Errorf("w[1] = %v, want 0.25", w[1])
	}
}

// Property: samples always fall in range for arbitrary weight vectors.
func TestQuickDiscreteInRange(t *testing.T) {
	f := func(raw []uint8, seed uint64) bool {
		if len(raw) == 0 {
			return true
		}
		weights := make([]float64, len(raw))
		total := 0.0
		for i, v := range raw {
			weights[i] = float64(v)
			total += weights[i]
		}
		if total == 0 {
			return true
		}
		d, err := NewDiscrete(weights)
		if err != nil {
			return false
		}
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := d.Sample(r)
			if v < 0 || v >= len(weights) || weights[v] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkDiscreteSample(b *testing.B) {
	w := ZipfWeights(100000, 1.05)
	d, err := NewDiscrete(w)
	if err != nil {
		b.Fatal(err)
	}
	r := NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Sample(r)
	}
}
