// Package stats provides the numeric substrate shared by every other
// package in this repository: a deterministic random number generator,
// the chi-square distribution functions used by the SpamBayes combining
// rule, Zipf and general discrete samplers for synthetic corpus
// generation, and small summary-statistics helpers used by the
// experiment harness.
//
// Everything in this package is purely computational and allocation
// conscious; nothing reads the clock, the environment, or global state.
// All randomness flows through the RNG type so that every experiment in
// the repository is reproducible from a single integer seed.
package stats

import (
	"fmt"
	"math"
	"math/bits"
)

// RNG is a deterministic pseudo-random number generator implementing
// xoshiro256** 1.0 (Blackman & Vigna). It is used instead of math/rand
// so that experiment output is bit-for-bit stable across Go releases
// and platforms. The zero value is not usable; construct with NewRNG.
//
// RNG is not safe for concurrent use; give each goroutine its own
// stream via Split.
type RNG struct {
	s [4]uint64
}

// splitmix64 advances the SplitMix64 state and returns the next output.
// It is the recommended seeding procedure for xoshiro generators: it
// guarantees the xoshiro state is never all zero and decorrelates
// nearby seeds.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator deterministically initialized from seed.
// Distinct seeds yield independent-looking streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	return r
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := bits.RotateLeft64(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = bits.RotateLeft64(r.s[3], 45)
	return result
}

// Uint64n returns a uniform integer in [0, n). It panics if n == 0.
// Debiasing uses Lemire's multiply-shift rejection method.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("stats: Uint64n with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("stats: Intn with n == %d", n))
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli reports true with probability p. Values of p outside [0,1]
// are clamped.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Shuffle pseudo-randomizes the order of n elements using the provided
// swap function (Fisher–Yates). It panics if n < 0.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	if n < 0 {
		panic("stats: Shuffle with n < 0")
	}
	for i := n - 1; i > 0; i-- {
		j := int(r.Uint64n(uint64(i + 1)))
		swap(i, j)
	}
}

// Perm returns a pseudo-random permutation of the integers [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Sample returns k distinct indices drawn uniformly from [0, n) in
// random order (partial Fisher–Yates). It panics if k > n or k < 0.
func (r *RNG) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic(fmt.Sprintf("stats: Sample(%d, %d) out of range", n, k))
	}
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + int(r.Uint64n(uint64(n-i)))
		p[i], p[j] = p[j], p[i]
	}
	return p[:k:k]
}

// NormFloat64 returns a standard-normal variate using the Marsaglia
// polar method. It draws a variable number of uniforms, so streams
// that interleave NormFloat64 with other draws are still deterministic
// but not draw-aligned across code changes.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// LogNormal returns exp(mu + sigma·Z) for standard normal Z.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Split derives an independent child generator from the current state
// and a label. The parent state is not advanced, so the same (state,
// label) pair always yields the same child; distinct labels yield
// decorrelated streams. Use it to give sub-experiments their own
// reproducible randomness.
func (r *RNG) Split(label string) *RNG {
	// Mix the label into a SplitMix64 stream seeded from the parent
	// state (FNV-1a over the label, then SplitMix for avalanche).
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime64
	}
	seed := r.s[0] ^ bits.RotateLeft64(r.s[1], 13) ^ bits.RotateLeft64(r.s[2], 29) ^ bits.RotateLeft64(r.s[3], 43) ^ h
	return NewRNG(seed)
}

// Clone returns a copy of the generator that will produce the same
// future stream as the receiver.
func (r *RNG) Clone() *RNG {
	c := *r
	return &c
}

// State returns the current internal state, for debugging and tests.
func (r *RNG) State() [4]uint64 { return r.s }
