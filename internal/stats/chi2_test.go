package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestChiSquareQKnownValues(t *testing.T) {
	// Reference values computed with the closed form
	// Q(x, 2k) = exp(-x/2) * sum_{i<k} (x/2)^i / i!.
	cases := []struct {
		x    float64
		v    int
		want float64
	}{
		{0, 2, 1},
		{2 * math.Ln2, 2, 0.5},     // exp(-ln 2) = 1/2
		{2, 2, math.Exp(-1)},       // exp(-1)
		{4, 4, 3 * math.Exp(-2)},   // e^-2 (1 + 2)
		{10, 4, 6 * math.Exp(-5)},  // e^-5 (1 + 5)
		{6, 6, 8.5 * math.Exp(-3)}, // e^-3 (1 + 3 + 4.5)
		{1000, 2, math.Exp(-500)},  // deep tail
	}
	for _, c := range cases {
		got := ChiSquareQ(c.x, c.v)
		if math.Abs(got-c.want) > 1e-12*math.Max(1, c.want) && math.Abs(got-c.want) > 1e-300 {
			t.Errorf("ChiSquareQ(%v, %d) = %v, want %v", c.x, c.v, got, c.want)
		}
	}
}

func TestChiSquareQMedianOfTwoDOF(t *testing.T) {
	// chi2 with 2 dof is Exp(1/2); its median is 2 ln 2.
	got := ChiSquareQ(2*math.Ln2, 2)
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Q(2ln2, 2) = %v, want 0.5", got)
	}
}

func TestChiSquareQBounds(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		x := r.Float64() * 2000
		v := 2 * (1 + r.Intn(200))
		q := ChiSquareQ(x, v)
		if q < 0 || q > 1 || math.IsNaN(q) {
			t.Fatalf("ChiSquareQ(%v, %d) = %v out of [0,1]", x, v, q)
		}
	}
}

func TestChiSquareQMonotoneInX(t *testing.T) {
	for _, v := range []int{2, 4, 10, 100, 300} {
		prev := 1.0
		for x := 0.0; x <= 400; x += 0.5 {
			q := ChiSquareQ(x, v)
			if q > prev+1e-12 {
				t.Fatalf("ChiSquareQ not non-increasing at x=%v v=%d: %v > %v", x, v, q, prev)
			}
			prev = q
		}
	}
}

func TestChiSquareQMonotoneInDOF(t *testing.T) {
	// For fixed x, more degrees of freedom means more mass above x.
	x := 20.0
	prev := 0.0
	for v := 2; v <= 60; v += 2 {
		q := ChiSquareQ(x, v)
		if q < prev-1e-12 {
			t.Fatalf("ChiSquareQ(%v, %d) = %v < previous %v", x, v, q, prev)
		}
		prev = q
	}
}

func TestChiSquareQLargeXUnderflowPath(t *testing.T) {
	// The log-space branch (m >= 700) must agree with GammaQ.
	for _, x := range []float64{1400, 1500, 2000, 5000} {
		for _, v := range []int{2, 10, 100, 298} {
			got := ChiSquareQ(x, v)
			want := GammaQ(float64(v)/2, x/2)
			if math.Abs(got-want) > 1e-10*math.Max(want, 1e-280) && got != want {
				t.Errorf("ChiSquareQ(%v,%d)=%g, GammaQ=%g", x, v, got, want)
			}
			if got < 0 || got > 1 {
				t.Errorf("ChiSquareQ(%v,%d)=%g out of range", x, v, got)
			}
		}
	}
}

func TestChiSquareQPanicsOnOddDOF(t *testing.T) {
	for _, v := range []int{-2, 0, 1, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ChiSquareQ(1, %d) did not panic", v)
				}
			}()
			ChiSquareQ(1, v)
		}()
	}
}

func TestChiSquareQExtremes(t *testing.T) {
	if got := ChiSquareQ(0, 10); got != 1 {
		t.Errorf("Q(0, 10) = %v, want 1", got)
	}
	if got := ChiSquareQ(-3, 10); got != 1 {
		t.Errorf("Q(-3, 10) = %v, want 1", got)
	}
	if got := ChiSquareQ(math.Inf(1), 10); got != 0 {
		t.Errorf("Q(inf, 10) = %v, want 0", got)
	}
}

func TestChiSquareCDFComplement(t *testing.T) {
	// CDF and Q must be complementary for even dof.
	for _, v := range []int{2, 4, 20, 150} {
		for x := 0.5; x < 300; x += 7.3 {
			cdf := ChiSquareCDF(x, v)
			q := ChiSquareQ(x, v)
			if math.Abs(cdf+q-1) > 1e-9 {
				t.Errorf("CDF+Q = %v at x=%v v=%d", cdf+q, x, v)
			}
		}
	}
}

func TestChiSquareCDFOddDOF(t *testing.T) {
	// chi2 with 1 dof: P(X <= x) = erf(sqrt(x/2)).
	for _, x := range []float64{0.1, 1, 2, 5, 10} {
		got := ChiSquareCDF(x, 1)
		want := math.Erf(math.Sqrt(x / 2))
		if math.Abs(got-want) > 1e-10 {
			t.Errorf("ChiSquareCDF(%v, 1) = %v, want %v", x, got, want)
		}
	}
}

func TestGammaPQComplement(t *testing.T) {
	for _, a := range []float64{0.5, 1, 2.5, 10, 75} {
		for _, x := range []float64{0.01, 0.5, 1, 5, 50, 200} {
			p, q := GammaP(a, x), GammaQ(a, x)
			if math.Abs(p+q-1) > 1e-10 {
				t.Errorf("GammaP+GammaQ = %v at a=%v x=%v", p+q, a, x)
			}
		}
	}
}

func TestGammaPKnownValues(t *testing.T) {
	// P(1, x) = 1 - exp(-x).
	for _, x := range []float64{0.1, 1, 3, 10} {
		got := GammaP(1, x)
		want := 1 - math.Exp(-x)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("GammaP(1, %v) = %v, want %v", x, got, want)
		}
	}
	if got := GammaP(3, 0); got != 0 {
		t.Errorf("GammaP(3, 0) = %v, want 0", got)
	}
}

func TestGammaPanics(t *testing.T) {
	cases := []func(){
		func() { GammaP(0, 1) },
		func() { GammaP(-1, 1) },
		func() { GammaP(1, -0.5) },
		func() { GammaQ(0, 1) },
		func() { GammaQ(1, -2) },
		func() { ChiSquareCDF(1, 0) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

// Property: for any even dof and non-negative x, Q is in [0,1].
func TestQuickChiSquareQRange(t *testing.T) {
	f := func(xRaw float64, vRaw uint8) bool {
		x := math.Abs(xRaw)
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		v := 2 * (1 + int(vRaw)%150)
		q := ChiSquareQ(x, v)
		return q >= 0 && q <= 1 && !math.IsNaN(q)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: SpamBayes closed form equals the incomplete-gamma route.
func TestQuickChiSquareQMatchesGamma(t *testing.T) {
	f := func(xRaw float64, vRaw uint8) bool {
		x := math.Mod(math.Abs(xRaw), 1200)
		if math.IsNaN(x) {
			return true
		}
		v := 2 * (1 + int(vRaw)%100)
		got := ChiSquareQ(x, v)
		want := GammaQ(float64(v)/2, x/2)
		return math.Abs(got-want) <= 1e-8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
