package stats

import (
	"math"
	"testing"
)

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(101)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v", variance)
	}
}

func TestNormFloat64Symmetry(t *testing.T) {
	r := NewRNG(103)
	const n = 100000
	neg := 0
	for i := 0; i < n; i++ {
		if r.NormFloat64() < 0 {
			neg++
		}
	}
	if math.Abs(float64(neg)/n-0.5) > 0.01 {
		t.Errorf("negative fraction = %v", float64(neg)/n)
	}
}

func TestLogNormal(t *testing.T) {
	r := NewRNG(107)
	const n = 100000
	mu, sigma := math.Log(230), 0.55
	var sumLog float64
	for i := 0; i < n; i++ {
		x := r.LogNormal(mu, sigma)
		if x <= 0 {
			t.Fatalf("LogNormal returned %v", x)
		}
		sumLog += math.Log(x)
	}
	if got := sumLog / n; math.Abs(got-mu) > 0.01 {
		t.Errorf("mean log = %v, want %v", got, mu)
	}
}
