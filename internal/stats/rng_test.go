package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: streams diverged: %d != %d", i, got, want)
		}
	}
}

func TestNewRNGSeedSensitivity(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("adjacent seeds produced %d identical draws out of 100", same)
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	if r.State() == ([4]uint64{}) {
		t.Fatal("seed 0 produced the all-zero xoshiro state")
	}
	// The stream must not be constant.
	first := r.Uint64()
	for i := 0; i < 10; i++ {
		if r.Uint64() != first {
			return
		}
	}
	t.Error("stream from seed 0 appears constant")
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean of %d uniforms = %v, want ~0.5", n, mean)
	}
}

func TestUint64nBounds(t *testing.T) {
	r := NewRNG(3)
	for _, n := range []uint64{1, 2, 3, 7, 100, 1 << 20, 1<<63 + 12345} {
		for i := 0; i < 2000; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nUniformity(t *testing.T) {
	r := NewRNG(5)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("value %d drawn %d times, want ~%.0f", v, c, want)
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Uint64n(0) did not panic")
		}
	}()
	NewRNG(1).Uint64n(0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	for _, n := range []int{0, -1, -100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			NewRNG(1).Intn(n)
		}()
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := NewRNG(13)
	const n = 100000
	for _, p := range []float64{0.1, 0.3, 0.5, 0.9} {
		hits := 0
		for i := 0; i < n; i++ {
			if r.Bernoulli(p) {
				hits++
			}
		}
		rate := float64(hits) / n
		if math.Abs(rate-p) > 0.01 {
			t.Errorf("Bernoulli(%v) rate = %v", p, rate)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(17)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSampleDistinct(t *testing.T) {
	r := NewRNG(19)
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(50)
		k := r.Intn(n + 1)
		s := r.Sample(n, k)
		if len(s) != k {
			t.Fatalf("Sample(%d,%d) returned %d items", n, k, len(s))
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Sample(%d,%d) = %v invalid", n, k, s)
			}
			seen[v] = true
		}
	}
}

func TestSamplePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Sample(3, 4) did not panic")
		}
	}()
	NewRNG(1).Sample(3, 4)
}

func TestSampleCoversAll(t *testing.T) {
	// Sample(n, n) must be a permutation of [0, n).
	r := NewRNG(23)
	s := r.Sample(20, 20)
	seen := make([]bool, 20)
	for _, v := range s {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("Sample(20,20) missed %d", i)
		}
	}
}

func TestSplitDeterministicAndIndependent(t *testing.T) {
	parent := NewRNG(99)
	a := parent.Split("alpha")
	b := parent.Split("alpha")
	c := parent.Split("beta")
	for i := 0; i < 100; i++ {
		av, bv := a.Uint64(), b.Uint64()
		if av != bv {
			t.Fatal("Split with identical labels diverged")
		}
		if av == c.Uint64() {
			t.Fatal("Split with distinct labels collided")
		}
	}
	// Split must not advance the parent.
	p1 := NewRNG(99)
	p1.Split("x")
	p2 := NewRNG(99)
	if p1.Uint64() != p2.Uint64() {
		t.Error("Split advanced the parent state")
	}
}

func TestCloneReplaysStream(t *testing.T) {
	r := NewRNG(31)
	r.Uint64()
	c := r.Clone()
	for i := 0; i < 100; i++ {
		if r.Uint64() != c.Uint64() {
			t.Fatal("clone diverged from original")
		}
	}
}

func TestShuffleZeroAndOne(t *testing.T) {
	r := NewRNG(37)
	r.Shuffle(0, func(i, j int) { t.Fatal("swap called for n=0") })
	r.Shuffle(1, func(i, j int) { t.Fatal("swap called for n=1") })
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := NewRNG(41)
	xs := []int{1, 1, 2, 3, 5, 8, 13}
	want := map[int]int{}
	for _, x := range xs {
		want[x]++
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := map[int]int{}
	for _, x := range xs {
		got[x]++
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("shuffle changed multiset: %v", xs)
		}
	}
}

// Property: Uint64n(n) < n for arbitrary seeds and moduli.
func TestQuickUint64nInRange(t *testing.T) {
	f := func(seed uint64, n uint64) bool {
		if n == 0 {
			n = 1
		}
		r := NewRNG(seed)
		for i := 0; i < 20; i++ {
			if r.Uint64n(n) >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: same seed, same stream (determinism across construction).
func TestQuickDeterminism(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := NewRNG(seed), NewRNG(seed)
		for i := 0; i < 16; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
