package stats

import (
	"math"
)

// The SpamBayes combining rule (Robinson [17] with Fisher's method [6])
// needs the survival function of the chi-square distribution with an
// even number of degrees of freedom:
//
//	chi2Q(x, 2n) = P(X >= x),  X ~ chi-square with 2n dof
//	             = exp(-x/2) * sum_{i=0}^{n-1} (x/2)^i / i!
//
// The closed form above is what the original SpamBayes implements
// ("chi2Q" in chi2.py). For large x the naive evaluation underflows,
// so ChiSquareQ switches to a log-space evaluation; for general (odd)
// degrees of freedom the regularized incomplete gamma function is used.

// ChiSquareQ returns the upper tail probability P(X >= x) for a
// chi-square random variable X with v degrees of freedom. v must be a
// positive even integer (the only case the SpamBayes score needs);
// ChiSquareQ panics otherwise. Results are clamped to [0, 1].
func ChiSquareQ(x float64, v int) float64 {
	if v <= 0 || v%2 != 0 {
		panic("stats: ChiSquareQ requires positive even degrees of freedom")
	}
	if x <= 0 {
		return 1
	}
	if math.IsInf(x, 1) {
		return 0
	}
	m := x / 2
	half := v / 2
	// Naive closed form while exp(-m) is representable; this matches
	// SpamBayes bit-for-bit in the common range.
	if m < 700 {
		term := math.Exp(-m)
		sum := term
		for i := 1; i < half; i++ {
			term *= m / float64(i)
			sum += term
		}
		return clamp01(sum)
	}
	// Log-space evaluation: sum exp(-m + i*ln m - lnGamma(i+1))
	// scaled by the largest term to avoid underflow.
	lnm := math.Log(m)
	maxLog := math.Inf(-1)
	logs := make([]float64, half)
	for i := 0; i < half; i++ {
		l := -m + float64(i)*lnm - lnGamma(float64(i+1))
		logs[i] = l
		if l > maxLog {
			maxLog = l
		}
	}
	if math.IsInf(maxLog, -1) {
		return 0
	}
	sum := 0.0
	for _, l := range logs {
		sum += math.Exp(l - maxLog)
	}
	return clamp01(math.Exp(maxLog) * sum)
}

// ChiSquareCDF returns P(X <= x) for a chi-square random variable with
// v degrees of freedom (any positive v, odd or even), evaluated via the
// regularized lower incomplete gamma function.
func ChiSquareCDF(x float64, v int) float64 {
	if v <= 0 {
		panic("stats: ChiSquareCDF requires positive degrees of freedom")
	}
	if x <= 0 {
		return 0
	}
	return GammaP(float64(v)/2, x/2)
}

// lnGamma is a thin wrapper over math.Lgamma that discards the sign
// (all our arguments are positive).
func lnGamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// GammaP returns the regularized lower incomplete gamma function
// P(a, x) = γ(a, x) / Γ(a) for a > 0, x >= 0, using the series
// expansion for x < a+1 and the continued fraction for x >= a+1
// (Numerical Recipes §6.2).
func GammaP(a, x float64) float64 {
	switch {
	case a <= 0:
		panic("stats: GammaP requires a > 0")
	case x < 0:
		panic("stats: GammaP requires x >= 0")
	case x == 0:
		return 0
	case x < a+1:
		return gammaSeries(a, x)
	default:
		return 1 - gammaContinuedFraction(a, x)
	}
}

// GammaQ returns the regularized upper incomplete gamma function
// Q(a, x) = 1 - P(a, x).
func GammaQ(a, x float64) float64 {
	switch {
	case a <= 0:
		panic("stats: GammaQ requires a > 0")
	case x < 0:
		panic("stats: GammaQ requires x >= 0")
	case x == 0:
		return 1
	case x < a+1:
		return 1 - gammaSeries(a, x)
	default:
		return gammaContinuedFraction(a, x)
	}
}

const (
	gammaMaxIter = 500
	gammaEps     = 3e-15
)

// gammaSeries evaluates P(a, x) by its power series, valid for x < a+1.
func gammaSeries(a, x float64) float64 {
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < gammaMaxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*gammaEps {
			break
		}
	}
	return clamp01(sum * math.Exp(-x+a*math.Log(x)-lnGamma(a)))
}

// gammaContinuedFraction evaluates Q(a, x) by its continued fraction
// (modified Lentz algorithm), valid for x >= a+1.
func gammaContinuedFraction(a, x float64) float64 {
	const fpmin = 1e-300
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= gammaMaxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			break
		}
	}
	return clamp01(math.Exp(-x+a*math.Log(x)-lnGamma(a)) * h)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
