package repro

import (
	"bytes"
	"strings"
	"testing"
)

// TestFacadeEndToEnd exercises the public API exactly as the README
// quickstart does: generate data, train, classify, attack, defend.
func TestFacadeEndToEnd(t *testing.T) {
	g, err := NewGeneratorWith(UniverseConfig{
		CommonWords:     50,
		StandardWords:   700,
		FormalWords:     250,
		ColloquialWords: 290,
		SpamWords:       120,
		PersonalWords:   400,
	}, defaultGenCfg())
	if err != nil {
		t.Fatal(err)
	}
	r := NewRNG(1)
	train := g.Corpus(r, 300, 300)

	f := TrainFilter(train, DefaultFilterOptions(), nil)
	conf := Evaluate(f, train)
	if conf.Accuracy() < 0.9 {
		t.Fatalf("training-set accuracy %v", conf.Accuracy())
	}

	// A fresh ham message classifies ham.
	target := g.HamMessage(r)
	if label, _ := f.Classify(target); label != Ham {
		t.Fatalf("fresh ham classified %v", label)
	}

	// Dictionary attack breaks the filter.
	attack := NewOptimalAttack(g.Universe())
	poisoned := f.Clone()
	poisoned.LearnWeighted(attack.BuildAttack(r), true, AttackSize(0.05, train.Len()))
	if label, _ := poisoned.Classify(target); label == Ham {
		t.Error("ham survived the optimal dictionary attack")
	}

	// Focused attack blocks the target.
	fa, err := NewFocusedAttack(target, 0.9, train.Spam())
	if err != nil {
		t.Fatal(err)
	}
	focused := f.Clone()
	focused.LearnWeighted(fa.BuildAttack(r), true, 60)
	if label, _ := focused.Classify(target); label == Ham {
		t.Error("target survived the focused attack")
	}

	// RONI rejects the attack email.
	roni, err := NewRONI(DefaultRONIConfig(), train, DefaultFilterOptions(), nil, r)
	if err != nil {
		t.Fatal(err)
	}
	if !roni.ShouldReject(attack.BuildAttack(r), true) {
		t.Error("RONI accepted the dictionary attack email")
	}

	// Filter persistence round-trips through the facade.
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFilter(&buf, DefaultFilterOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Score(target) != f.Score(target) {
		t.Error("persistence changed scores")
	}
}

func TestFacadeMessageAndMbox(t *testing.T) {
	m, err := ParseMessage(strings.NewReader("Subject: hello\n\nworld\n"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Subject() != "hello" {
		t.Fatalf("subject %q", m.Subject())
	}
	var buf bytes.Buffer
	w := NewMboxWriter(&buf)
	if err := w.WriteMessage(m); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	msgs, err := NewMboxReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil || len(msgs) != 1 {
		t.Fatalf("mbox round trip: %v, %d messages", err, len(msgs))
	}
}

func TestFacadeCorpusAndTokenizer(t *testing.T) {
	ham := []*Message{{Body: "meeting agenda minutes\n"}}
	spam := []*Message{{Body: "winner lottery claim\n"}}
	c := NewCorpus(ham, spam)
	if c.Len() != 2 || c.NumSpam() != 1 {
		t.Fatalf("corpus %d/%d", c.Len(), c.NumSpam())
	}
	toks := DefaultTokenizer().TokenSet(ham[0])
	if len(toks) != 3 {
		t.Fatalf("tokens %v", toks)
	}
	opts := DefaultTokenizerOptions()
	opts.Headers = false
	if NewTokenizer(opts).Options().Headers {
		t.Error("tokenizer options not applied")
	}
}

func TestFacadeExperimentConfigs(t *testing.T) {
	if err := FullScaleConfig().Validate(); err != nil {
		t.Error(err)
	}
	if err := SmallScaleConfig().Validate(); err != nil {
		t.Error(err)
	}
}

// defaultGenCfg mirrors textgen.DefaultConfig through the facade
// (kept here so the test exercises only public API).
func defaultGenCfg() GeneratorConfig {
	cfg := SmallScaleConfig()
	return cfg.Gen
}
