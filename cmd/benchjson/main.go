// Command benchjson converts `go test -bench` output into JSON so CI
// can archive one machine-readable perf artifact per run and the
// repository's benchmark trajectory accumulates across PRs.
//
// Usage:
//
//	go test -bench=. -benchmem -run='^$' . | benchjson -out BENCH.json
//
// Each benchmark result line becomes one record with its name (the
// trailing -GOMAXPROCS suffix split off), iteration count, and every
// value/unit metric pair (ns/op, B/op, allocs/op, and any custom
// b.ReportMetric units). Context lines (goos, goarch, pkg, cpu) are
// captured into a context object. When -out is set, the raw input is
// echoed to stdout so a piped CI step still shows the human-readable
// results in its log.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark's full name without the -GOMAXPROCS
	// suffix, e.g. "ShardedClassifyBatch/shards=4/workers=1".
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix the line ran under (0 if absent).
	Procs int `json:"procs,omitempty"`
	// Iterations is the b.N the reported averages are over.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit to value: "ns/op", "B/op", "allocs/op", plus
	// any custom units reported with b.ReportMetric.
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the artifact written to -out.
type Report struct {
	// Context captures the goos/goarch/pkg/cpu header lines.
	Context map[string]string `json:"context,omitempty"`
	// Benchmarks holds every parsed result in input order.
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "write JSON to this file (default stdout); when set, input is echoed to stdout")
	flag.Parse()

	report := Report{Context: map[string]string{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	echo := *out != ""
	for sc.Scan() {
		line := sc.Text()
		if echo {
			fmt.Println(line)
		}
		if name, value, ok := strings.Cut(line, ": "); ok && report.Context != nil {
			switch name {
			case "goos", "goarch", "pkg", "cpu":
				report.Context[name] = value
				continue
			}
		}
		if res, ok := parseLine(line); ok {
			report.Benchmarks = append(report.Benchmarks, res)
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(report.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(report.Benchmarks), *out)
}

// parseLine parses one "BenchmarkX-8  N  v unit  v unit ..." line.
// Lines that do not look like benchmark results report ok = false.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	procs := 0
	if i := strings.LastIndexByte(name, '-'); i >= 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			procs = p
			name = name[:i]
		}
	}
	iterations, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: name, Procs: procs, Iterations: iterations, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		value, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		res.Metrics[fields[i+1]] = value
	}
	return res, true
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(1)
}
