package main

import "testing"

func TestParseLine(t *testing.T) {
	res, ok := parseLine("BenchmarkShardedClassifyBatch/shards=4/workers=1-8 \t 3\t  32649800 ns/op\t 120 B/op\t 4 allocs/op")
	if !ok {
		t.Fatal("benchmark line not parsed")
	}
	if res.Name != "ShardedClassifyBatch/shards=4/workers=1" || res.Procs != 8 || res.Iterations != 3 {
		t.Fatalf("parsed %+v", res)
	}
	if res.Metrics["ns/op"] != 32649800 || res.Metrics["B/op"] != 120 || res.Metrics["allocs/op"] != 4 {
		t.Fatalf("metrics %v", res.Metrics)
	}

	// Custom b.ReportMetric units ride along.
	res, ok = parseLine("BenchmarkFig1DictionaryAttacks-2   1  9.5 ns/op  100.0 hamloss%@max")
	if !ok || res.Metrics["hamloss%@max"] != 100 {
		t.Fatalf("custom metric: %+v ok=%v", res, ok)
	}

	// Sub-benchmark names keep internal dashes; only a numeric
	// -GOMAXPROCS suffix is split off.
	res, ok = parseLine("BenchmarkAblationTokenizer/no-headers 10 5 ns/op")
	if !ok || res.Name != "AblationTokenizer/no-headers" || res.Procs != 0 {
		t.Fatalf("dash handling: %+v ok=%v", res, ok)
	}

	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \trepro\t1.763s",
		"",
		"Benchmark",
		"BenchmarkBroken notanumber",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("non-result line parsed as benchmark: %q", line)
		}
	}
}
