// Command sbserved runs the guarded serving daemon: an HTTP front-end
// over one guarded engine (or a sharded fleet) that classifies on
// demand and learns only through admission control.
//
// The daemon wires the paper's §5 defenses into a network deployment:
// a token-flood gate and incremental RONI vet every learn submission,
// quarantined candidates are held for swap-time review, and snapshot
// save/resume carries the admission state with the classifier — a
// restart cannot amnesty held mail or refill a spent probe budget.
// The learn path is asynchronous and bounded: when it saturates (or
// an admitter wedges), submissions shed with 503 + Retry-After while
// classification continues unharmed.
//
// Usage:
//
//	sbserved -addr :8525 -backend sbayes
//	sbserved -backend graham -shards 4 -snapshot-dir /var/lib/sbserved
//
// With -snapshot-dir, the daemon resumes the newest persisted
// snapshot at startup (falling back to a fresh bootstrap when none
// exists), exposes POST /admin/save and /admin/resume, and saves on
// graceful shutdown.
//
// Endpoints: POST /classify, /score (single JSON), /classify/batch,
// /score/batch (NDJSON streams), /learn (202 or 503 shed),
// /admin/flush, /admin/save, /admin/resume; GET /stats, /healthz
// (readiness: 503 while the learn queue saturates), /metrics
// (Prometheus text over one registry shared by engine, admission, and
// serve), /trace (sampled decision lifecycles as NDJSON), and — with
// -pprof — /debug/pprof/.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/admission"
	"repro/internal/corpus"
	"repro/internal/engine"
	"repro/internal/mail"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/stats"
	"repro/internal/textgen"
	"repro/internal/tokenize"

	_ "repro/internal/graham"
	_ "repro/internal/sbayes"
)

func main() {
	var (
		addr     = flag.String("addr", ":8525", "listen address")
		backend  = flag.String("backend", "sbayes", fmt.Sprintf("classifier backend %v", engine.Backends()))
		shards   = flag.Int("shards", 0, "shard the fleet N ways (0 = single engine)")
		name     = flag.String("name", "served", "snapshot line name")
		snapDir  = flag.String("snapshot-dir", "", "snapshot store directory (empty disables persistence)")
		seed     = flag.Uint64("seed", 1, "deterministic seed for bootstrap and admission")
		bootHam  = flag.Int("bootstrap-ham", 300, "bootstrap corpus ham count (fresh start only)")
		bootSpam = flag.Int("bootstrap-spam", 300, "bootstrap corpus spam count (fresh start only)")
		poolSize = flag.Int("pool", 200, "RONI calibration pool size")

		maxDistinct = flag.Int("max-distinct", 2000, "flood gate: reject candidates with more distinct tokens")
		roniBudget  = flag.Float64("roni-budget", 0.05, "RONI probe budget earned per admitted message")
		roniBurst   = flag.Float64("roni-burst", 4, "RONI probe budget burst capacity")
		swapGrant   = flag.Float64("swap-grant", 4, "probe budget granted at each publish (quarantine review)")
		quarCap     = flag.Int("quarantine-cap", 256, "quarantine capacity")

		learnQueue  = flag.Int("learn-queue", 256, "bounded learn queue depth (full queue sheds 503)")
		learnBatch  = flag.Int("learn-batch", 64, "max examples per incremental retrain")
		maxInflight = flag.Int("max-inflight", 0, "max concurrent batch-scoring requests (0 = 2x GOMAXPROCS)")
		retryAfter  = flag.Duration("retry-after", time.Second, "Retry-After advertised on shed learn submissions")

		metrics    = flag.Bool("metrics", true, "expose GET /metrics (Prometheus text) over one registry shared by engine, admission, and serve")
		traceEvery = flag.Int("trace-every", 16, "decision-trace sampling: record lifecycles whose digest %% N == 0 (0 disables GET /trace)")
		traceBuf   = flag.Int("trace-buf", 1024, "decision-trace ring capacity")
		pprofOn    = flag.Bool("pprof", false, "mount GET /debug/pprof/ (opt-in: profiles leak on an exposed port)")
	)
	flag.Parse()

	if err := run(config{
		addr: *addr, backend: *backend, shards: *shards, name: *name,
		snapDir: *snapDir, seed: *seed, bootHam: *bootHam, bootSpam: *bootSpam,
		poolSize: *poolSize, maxDistinct: *maxDistinct, roniBudget: *roniBudget,
		roniBurst: *roniBurst, swapGrant: *swapGrant, quarCap: *quarCap,
		learnQueue: *learnQueue, learnBatch: *learnBatch,
		maxInflight: *maxInflight, retryAfter: *retryAfter,
		metrics: *metrics, traceEvery: *traceEvery, traceBuf: *traceBuf, pprofOn: *pprofOn,
	}); err != nil {
		log.Fatal(err)
	}
}

type config struct {
	addr, backend, name, snapDir     string
	shards                           int
	seed                             uint64
	bootHam, bootSpam, poolSize      int
	maxDistinct                      int
	roniBudget, roniBurst, swapGrant float64
	quarCap, learnQueue, learnBatch  int
	maxInflight                      int
	retryAfter                       time.Duration
	metrics                          bool
	traceEvery, traceBuf             int
	pprofOn                          bool
}

// newGenerator builds the synthetic mail universe the daemon
// bootstraps and calibrates from — the same population shape the
// scenario simulator and the load generator use.
func newGenerator() *textgen.Generator {
	u := textgen.MustUniverse(textgen.UniverseConfig{
		CommonWords:     50,
		StandardWords:   700,
		FormalWords:     250,
		ColloquialWords: 290,
		SpamWords:       120,
		PersonalWords:   400,
	})
	return textgen.MustNew(u, textgen.DefaultConfig())
}

func run(cfg config) error {
	b, err := engine.Lookup(cfg.backend)
	if err != nil {
		return err
	}
	gen := newGenerator()
	rng := stats.NewRNG(cfg.seed)

	// One registry and one tracer for the whole daemon: engine,
	// admission, and serve all instrument into them, so one scrape of
	// GET /metrics sees the full pipeline and one GET /trace replays a
	// message's lifecycle across every layer it crossed.
	var reg *obs.Registry
	var tracer *obs.Tracer
	if cfg.metrics {
		reg = obs.NewRegistry()
	}
	if cfg.traceEvery > 0 {
		tracer = obs.NewTracer(cfg.traceBuf, cfg.traceEvery)
	}

	// Admission wiring: structural flood gate first (cheap), then the
	// budgeted RONI probe. Quarantined candidates wait for the
	// post-publish review.
	calib := gen.Corpus(rng.Split("calib"), cfg.poolSize/2, cfg.poolSize-cfg.poolSize/2)
	roni, err := admission.NewIncrementalRONI(
		admission.IncrementalRONIConfig{BudgetPerMessage: cfg.roniBudget, Burst: cfg.roniBurst},
		calib, b.New, rng.Split("roni"))
	if err != nil {
		return err
	}
	gate := admission.NewTokenFloodGate(admission.FloodGateConfig{MaxDistinct: cfg.maxDistinct})
	chain := admission.NewChain(gate, roni)
	quarantine := admission.NewQuarantine(admission.QuarantineConfig{Capacity: cfg.quarCap, Trace: tracer})
	if reg != nil {
		roni.Register(reg)
		quarantine.Register(reg)
	}

	gcfg := engine.GuardedConfig{Quarantine: quarantine}
	gcfg.PostPublish = append(gcfg.PostPublish, func() {
		// Each publish grants review budget and re-vets the held mail
		// under it. Released candidates are reported, not auto-trained:
		// re-entering the training path from a publish hook would
		// publish recursively (hookorder forbids it for that reason),
		// so a deployment feeds releases back through POST /learn.
		roni.Grant(cfg.swapGrant)
		released, dropped := quarantine.Review(func(m *mail.Message, ts *tokenize.TokenStream, spam bool) admission.Decision {
			return chain.Admit(context.Background(), m, ts, spam)
		})
		if len(released) > 0 || dropped > 0 {
			log.Printf("quarantine review: %d released, %d dropped", len(released), dropped)
		}
	})

	var store engine.SnapshotStore
	if cfg.snapDir != "" {
		ds, err := engine.NewDirStore(cfg.snapDir)
		if err != nil {
			return err
		}
		store = ds
	}

	scfg := serve.Config{
		LearnQueue:  cfg.learnQueue,
		LearnBatch:  cfg.learnBatch,
		MaxInflight: cfg.maxInflight,
		RetryAfter:  cfg.retryAfter,
		Store:       store,
		Name:        cfg.name,
		Backend:     cfg.backend,
		Obs:         reg,
		Trace:       tracer,
		EnablePprof: cfg.pprofOn,
	}

	var srv *serve.Server
	var saveOnExit func()
	if cfg.shards > 0 {
		gsh, resumed, err := buildSharded(cfg, b, gen, rng, chain, gcfg, store, reg, tracer)
		if err != nil {
			return err
		}
		log.Printf("serving %d shards of %s (resumed=%v) on %s", cfg.shards, cfg.backend, resumed, cfg.addr)
		scfg.Resumed = resumed
		srv = serve.NewSharded(gsh, scfg)
		if store != nil {
			saveOnExit = func() {
				if gens, err := gsh.Sharded().SaveAll(store, cfg.backend); err != nil {
					log.Printf("save on exit: %v", err)
				} else {
					log.Printf("saved shard generations %v", gens)
				}
			}
		}
	} else {
		guarded, resumed, err := buildSingle(cfg, b, gen, rng, chain, gcfg, store, reg, tracer)
		if err != nil {
			return err
		}
		log.Printf("serving %s generation %d (resumed=%v) on %s", cfg.backend, guarded.Generation(), resumed, cfg.addr)
		scfg.Resumed = resumed
		srv = serve.NewSingle(guarded, scfg)
		if store != nil {
			saveOnExit = func() {
				if g, err := engine.SaveGuarded(store, cfg.name, cfg.backend, guarded); err != nil {
					log.Printf("save on exit: %v", err)
				} else {
					log.Printf("saved generation %d", g)
				}
			}
		}
	}
	defer srv.Close()

	httpSrv := &http.Server{Addr: cfg.addr, Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Printf("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := srv.Close(); err != nil {
		return err
	}
	if saveOnExit != nil {
		saveOnExit()
	}
	return nil
}

// buildSingle resumes the guarded engine from the store when a
// snapshot line exists, else bootstraps a fresh classifier from the
// synthetic population.
func buildSingle(cfg config, b engine.Backend, gen *textgen.Generator, rng *stats.RNG, chain *admission.Chain, gcfg engine.GuardedConfig, store engine.SnapshotStore, reg *obs.Registry, tracer *obs.Tracer) (*engine.Guarded, bool, error) {
	ecfg := engine.Config{Name: cfg.name, Obs: reg, Trace: tracer}
	if store != nil {
		if _, err := engine.LatestEnvelope(store, cfg.name); err == nil {
			guarded, env, err := engine.ResumeGuarded(store, cfg.name, ecfg, chain, gcfg)
			if err != nil {
				return nil, false, err
			}
			_ = env
			return guarded, true, nil
		}
	}
	clf := b.New()
	trainBootstrap(clf, gen.Corpus(rng.Split("boot"), cfg.bootHam, cfg.bootSpam))
	return engine.NewGuarded(engine.New(clf, ecfg), chain, gcfg), false, nil
}

// buildSharded resumes the fleet from the store when every shard's
// snapshot line exists, else bootstraps fresh shards, each trained on
// its own partition of the bootstrap corpus.
func buildSharded(cfg config, b engine.Backend, gen *textgen.Generator, rng *stats.RNG, chain *admission.Chain, gcfg engine.GuardedConfig, store engine.SnapshotStore, reg *obs.Registry, tracer *obs.Tracer) (*engine.GuardedSharded, bool, error) {
	shcfg := engine.ShardedConfig{Name: cfg.name, Obs: reg, Trace: tracer}
	if store != nil {
		sh, gens, err := engine.ResumeAll(store, cfg.shards, shcfg)
		if err == nil {
			if stale := engine.StaleShards(gens); len(stale) > 0 {
				log.Printf("warning: shards %v resumed stale (generations %v)", stale, gens)
			}
			return engine.NewGuardedSharded(sh, chain, gcfg), true, nil
		}
		if !errors.Is(err, os.ErrNotExist) {
			log.Printf("resume unavailable (%v); bootstrapping fresh shards", err)
		}
	}
	boot := gen.Corpus(rng.Split("boot"), cfg.bootHam, cfg.bootSpam)
	parts := engine.PartitionByKey(boot, cfg.shards, engine.RecipientKey)
	clfs := make([]engine.Classifier, cfg.shards)
	for i := range clfs {
		clf := b.New()
		trainBootstrap(clf, parts[i])
		clfs[i] = clf
	}
	return engine.NewGuardedSharded(engine.NewSharded(clfs, shcfg), chain, gcfg), false, nil
}

// trainBootstrap trains the operator-trusted bootstrap corpus into a
// fresh classifier before the engine starts serving. This is the one
// pre-admission training path in the daemon: the corpus is generated
// locally from the seed, not received from the network.
func trainBootstrap(clf engine.Classifier, c *corpus.Corpus) {
	for _, ex := range c.Examples {
		clf.Learn(ex.Msg, ex.Spam) //sbvet:unguarded operator-trusted local bootstrap corpus; admission vets network submissions, not the seed
	}
}
