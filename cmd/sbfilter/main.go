// Command sbfilter is a standalone SpamBayes-style spam filter over
// mbox archives: train a token database, classify messages, or score
// a single message from stdin — the filter a downstream user would
// actually deploy (and the system the paper attacks).
//
// Usage:
//
//	sbfilter train    -db FILE -ham HAM.mbox -spam SPAM.mbox
//	sbfilter classify -db FILE MBOX...
//	sbfilter score    -db FILE            (one message on stdin)
//	sbfilter info     -db FILE
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/mail"
	"repro/internal/sbayes"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "train":
		err = cmdTrain(args)
	case "classify":
		err = cmdClassify(args)
	case "score":
		err = cmdScore(args)
	case "info":
		err = cmdInfo(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sbfilter: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  sbfilter train    -db FILE -ham HAM.mbox -spam SPAM.mbox
  sbfilter classify -db FILE MBOX...
  sbfilter score    -db FILE            (reads one message from stdin)
  sbfilter info     -db FILE
`)
}

// loadMbox reads every message of an mbox file.
func loadMbox(path string) ([]*mail.Message, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return mail.NewMboxReader(f).ReadAll()
}

// loadDB reads a filter database.
func loadDB(path string) (*sbayes.Filter, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return sbayes.Load(f, sbayes.DefaultOptions(), nil)
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	db := fs.String("db", "", "token database file to write")
	hamPath := fs.String("ham", "", "mbox of ham training messages")
	spamPath := fs.String("spam", "", "mbox of spam training messages")
	fs.Parse(args)
	if *db == "" || *hamPath == "" || *spamPath == "" {
		return fmt.Errorf("train needs -db, -ham and -spam")
	}
	ham, err := loadMbox(*hamPath)
	if err != nil {
		return err
	}
	spam, err := loadMbox(*spamPath)
	if err != nil {
		return err
	}
	filter := sbayes.NewDefault()
	for _, m := range ham {
		filter.Learn(m, false)
	}
	for _, m := range spam {
		filter.Learn(m, true)
	}
	out, err := os.Create(*db)
	if err != nil {
		return err
	}
	if err := filter.Save(out); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	ns, nh := filter.Counts()
	fmt.Printf("trained on %d ham + %d spam; %d tokens -> %s\n", nh, ns, filter.VocabSize(), *db)
	return nil
}

func cmdClassify(args []string) error {
	fs := flag.NewFlagSet("classify", flag.ExitOnError)
	db := fs.String("db", "", "token database file")
	fs.Parse(args)
	if *db == "" || fs.NArg() == 0 {
		return fmt.Errorf("classify needs -db and at least one mbox")
	}
	filter, err := loadDB(*db)
	if err != nil {
		return err
	}
	counts := map[sbayes.Label]int{}
	for _, path := range fs.Args() {
		msgs, err := loadMbox(path)
		if err != nil {
			return err
		}
		for i, m := range msgs {
			label, score := filter.Classify(m)
			counts[label]++
			subject := m.Subject()
			if len(subject) > 40 {
				subject = subject[:40]
			}
			fmt.Printf("%s:%d\t%-6s\t%.4f\t%s\n", path, i, label, score, subject)
		}
	}
	fmt.Printf("totals: %d ham, %d unsure, %d spam\n",
		counts[sbayes.Ham], counts[sbayes.Unsure], counts[sbayes.Spam])
	return nil
}

func cmdScore(args []string) error {
	fs := flag.NewFlagSet("score", flag.ExitOnError)
	db := fs.String("db", "", "token database file")
	explain := fs.Bool("explain", false, "print per-token clues")
	fs.Parse(args)
	if *db == "" {
		return fmt.Errorf("score needs -db")
	}
	filter, err := loadDB(*db)
	if err != nil {
		return err
	}
	msg, err := mail.Parse(os.Stdin)
	if err != nil {
		return err
	}
	label, score := filter.Classify(msg)
	fmt.Printf("%s\t%.4f\n", label, score)
	if *explain {
		for _, c := range filter.Explain(msg) {
			marker := " "
			if c.Used {
				marker = "*"
			}
			fmt.Printf("%s %.4f %s\n", marker, c.Score, c.Token)
		}
	}
	return nil
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	db := fs.String("db", "", "token database file")
	fs.Parse(args)
	if *db == "" {
		return fmt.Errorf("info needs -db")
	}
	filter, err := loadDB(*db)
	if err != nil {
		return err
	}
	ns, nh := filter.Counts()
	opts := filter.Options()
	fmt.Printf("messages: %d ham, %d spam\n", nh, ns)
	fmt.Printf("tokens:   %d\n", filter.VocabSize())
	fmt.Printf("cutoffs:  ham<=%.2f spam>%.2f\n", opts.HamCutoff, opts.SpamCutoff)
	return nil
}
