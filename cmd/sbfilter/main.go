// Command sbfilter is a standalone statistical spam filter over mbox
// archives: train a token database, classify messages, or score a
// single message from stdin — the filter a downstream user would
// actually deploy (and the system the paper attacks).
//
// The learner is pluggable: -backend selects any registered engine
// backend (sbayes, graham), and classification fans out across a
// worker pool (-j) through the batch-scoring engine.
//
// Alongside the raw -db token-database files, the save/resume pair
// speaks the serving layer's durable snapshot format: save trains a
// filter and publishes it as the next generation of a snapshot
// directory (generation-stamped, checksummed, atomically written),
// and resume restores the newest valid generation — the stored
// envelope names its own backend, so resume needs no -backend flag.
//
// Usage:
//
//	sbfilter train    [-backend B] -db FILE -ham HAM.mbox -spam SPAM.mbox
//	sbfilter classify [-backend B] [-j N] -db FILE MBOX...
//	sbfilter score    [-backend B] -db FILE      (one message on stdin)
//	sbfilter info     [-backend B] -db FILE
//	sbfilter save     [-backend B] [-name N] [-keep K] -dir DIR -ham HAM.mbox -spam SPAM.mbox
//	sbfilter resume   [-name N] [-j N] -dir DIR [MBOX...]
//	sbfilter backends
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/mail"
	"repro/internal/sbayes"

	// Register the backends sbfilter does not otherwise import.
	_ "repro/internal/graham"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "train":
		err = cmdTrain(args)
	case "classify":
		err = cmdClassify(args)
	case "score":
		err = cmdScore(args)
	case "info":
		err = cmdInfo(args)
	case "save":
		err = cmdSave(args)
	case "resume":
		err = cmdResume(args)
	case "backends":
		err = cmdBackends()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sbfilter: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  sbfilter train    [-backend B] -db FILE -ham HAM.mbox -spam SPAM.mbox
  sbfilter classify [-backend B] [-j N] -db FILE MBOX...
  sbfilter score    [-backend B] -db FILE      (reads one message from stdin)
  sbfilter info     [-backend B] -db FILE
  sbfilter save     [-backend B] [-name N] [-keep K] -dir DIR -ham HAM.mbox -spam SPAM.mbox
  sbfilter resume   [-name N] [-j N] -dir DIR [MBOX...]
  sbfilter backends

Backends: %s (default sbayes).
`, strings.Join(engine.Backends(), ", "))
}

// backendFlag adds the -backend flag to a flag set.
func backendFlag(fs *flag.FlagSet) *string {
	return fs.String("backend", "sbayes", "learner backend ("+strings.Join(engine.Backends(), "|")+")")
}

// newClassifier constructs a fresh classifier for a backend name.
func newClassifier(backend string) (engine.Classifier, error) {
	b, err := engine.Lookup(backend)
	if err != nil {
		return nil, err
	}
	return b.New(), nil
}

// loadMbox reads every message of an mbox file.
func loadMbox(path string) ([]*mail.Message, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return mail.NewMboxReader(f).ReadAll()
}

// loadDB constructs a backend classifier and restores its database.
func loadDB(path, backend string) (engine.Classifier, error) {
	clf, err := newClassifier(backend)
	if err != nil {
		return nil, err
	}
	p, ok := clf.(engine.Persistable)
	if !ok {
		return nil, fmt.Errorf("backend %q does not persist databases", backend)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if err := p.Load(f); err != nil {
		return nil, err
	}
	return clf, nil
}

func cmdBackends() error {
	for _, name := range engine.Backends() {
		b, err := engine.Lookup(name)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s %s\n", b.Name, b.Doc)
	}
	return nil
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	backend := backendFlag(fs)
	db := fs.String("db", "", "token database file to write")
	hamPath := fs.String("ham", "", "mbox of ham training messages")
	spamPath := fs.String("spam", "", "mbox of spam training messages")
	fs.Parse(args)
	if *db == "" || *hamPath == "" || *spamPath == "" {
		return fmt.Errorf("train needs -db, -ham and -spam")
	}
	// Fail fast, before the training pass: the backend must persist.
	probe, err := newClassifier(*backend)
	if err != nil {
		return err
	}
	if _, ok := probe.(engine.Persistable); !ok {
		return fmt.Errorf("backend %q does not persist databases", *backend)
	}
	clf, trained, err := trainFromMboxes(*backend, *hamPath, *spamPath)
	if err != nil {
		return err
	}
	p := clf.(engine.Persistable)
	out, err := os.Create(*db)
	if err != nil {
		return err
	}
	if err := p.Save(out); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	ns, nh := clf.Counts()
	fmt.Printf("trained %s on %d messages (%d ham + %d spam) -> %s\n", *backend, trained, nh, ns, *db)
	return nil
}

func cmdClassify(args []string) error {
	fs := flag.NewFlagSet("classify", flag.ExitOnError)
	backend := backendFlag(fs)
	db := fs.String("db", "", "token database file")
	workers := fs.Int("j", runtime.GOMAXPROCS(0), "batch-classification parallelism")
	fs.Parse(args)
	if *db == "" || fs.NArg() == 0 {
		return fmt.Errorf("classify needs -db and at least one mbox")
	}
	clf, err := loadDB(*db, *backend)
	if err != nil {
		return err
	}
	eng := engine.New(clf, engine.Config{Name: *backend, Workers: *workers})
	return classifyMboxes(eng, fs.Args(),
		fmt.Sprintf("%d workers", eng.Workers()))
}

// classifyMboxes scores each mbox through the engine and prints one
// verdict line per message plus a totals line — the shared output
// path of classify and resume. One batch call per mbox: the worker
// pool scores each archive in parallel while only one archive is
// resident, and output streams between archives in input order. The
// extra string is appended into the totals line (worker count,
// resumed generation).
func classifyMboxes(eng *engine.Engine, paths []string, extra string) error {
	counts := map[engine.Label]int{}
	for _, path := range paths {
		msgs, err := loadMbox(path)
		if err != nil {
			return err
		}
		results, err := eng.ClassifyBatch(context.Background(), msgs)
		if err != nil {
			return err
		}
		for i, res := range results {
			counts[res.Label]++
			subject := msgs[i].Subject()
			if len(subject) > 40 {
				subject = subject[:40]
			}
			fmt.Printf("%s:%d\t%-6s\t%.4f\t%s\n", path, i, res.Label, res.Score, subject)
		}
	}
	stats := eng.Stats()
	fmt.Printf("totals: %d ham, %d unsure, %d spam (%d msgs, %s, %v)\n",
		counts[engine.Ham], counts[engine.Unsure], counts[engine.Spam],
		stats.Classified, extra, stats.BatchLatency.Round(time.Microsecond))
	return nil
}

func cmdScore(args []string) error {
	fs := flag.NewFlagSet("score", flag.ExitOnError)
	backend := backendFlag(fs)
	db := fs.String("db", "", "token database file")
	explain := fs.Bool("explain", false, "print per-token clues (sbayes only)")
	fs.Parse(args)
	if *db == "" {
		return fmt.Errorf("score needs -db")
	}
	clf, err := loadDB(*db, *backend)
	if err != nil {
		return err
	}
	f, isSBayes := clf.(*sbayes.Filter)
	if *explain && !isSBayes {
		return fmt.Errorf("-explain is only available for the sbayes backend")
	}
	msg, err := mail.Parse(os.Stdin)
	if err != nil {
		return err
	}
	label, score := clf.Classify(msg)
	fmt.Printf("%s\t%.4f\n", label, score)
	if *explain {
		for _, c := range f.Explain(msg) {
			marker := " "
			if c.Used {
				marker = "*"
			}
			fmt.Printf("%s %.4f %s\n", marker, c.Score, c.Token)
		}
	}
	return nil
}

// trainFromMboxes builds a fresh backend classifier and bulk-trains
// it through an engine LearnStream — the shared training path of
// train and save.
func trainFromMboxes(backend, hamPath, spamPath string) (engine.Classifier, int, error) {
	clf, err := newClassifier(backend)
	if err != nil {
		return nil, 0, err
	}
	ham, err := loadMbox(hamPath)
	if err != nil {
		return nil, 0, err
	}
	spam, err := loadMbox(spamPath)
	if err != nil {
		return nil, 0, err
	}
	eng := engine.New(clf, engine.Config{Name: backend})
	in, wait := eng.LearnStream(context.Background()) //sbvet:unguarded operator-initiated bootstrap from local mboxes the operator labeled; admission vets third-party reports, not the operator
	for _, m := range ham {
		in <- engine.Labeled{Msg: m, Spam: false}
	}
	for _, m := range spam {
		in <- engine.Labeled{Msg: m, Spam: true}
	}
	close(in)
	trained, err := wait()
	if err != nil {
		return nil, 0, err
	}
	return clf, trained, nil
}

// cmdSave trains a filter on the given mboxes and publishes it as the
// next generation of the snapshot directory: if the store already
// holds a valid generation line the new snapshot continues it
// (generation+1), otherwise the line starts at 1. -keep prunes the
// directory down to the K newest generations afterward.
func cmdSave(args []string) error {
	fs := flag.NewFlagSet("save", flag.ExitOnError)
	backend := backendFlag(fs)
	dir := fs.String("dir", "", "snapshot directory")
	name := fs.String("name", "sbfilter", "snapshot line name within the directory")
	keep := fs.Int("keep", 0, "prune to the K newest generations after saving (0 keeps all)")
	hamPath := fs.String("ham", "", "mbox of ham training messages")
	spamPath := fs.String("spam", "", "mbox of spam training messages")
	fs.Parse(args)
	if *dir == "" || *hamPath == "" || *spamPath == "" {
		return fmt.Errorf("save needs -dir, -ham and -spam")
	}
	// Check the line before the (potentially long) training pass:
	// continue an existing generation line (reading only the newest
	// envelope's stamp, not the whole database); an empty store starts
	// at 1. A store that holds generations but none that validates is
	// an error — starting over would overwrite the line's history —
	// and so is a line written by a different backend.
	st, err := engine.NewDirStore(*dir)
	if err != nil {
		return err
	}
	gens, err := st.Generations(*name)
	if err != nil {
		return err
	}
	next := uint64(1)
	if len(gens) > 0 {
		env, err := engine.LatestEnvelope(st, *name)
		if err != nil {
			return fmt.Errorf("refusing to restart line %q in %s: %w", *name, *dir, err)
		}
		if env.Backend != *backend {
			return fmt.Errorf("line %q in %s is a %s line; refusing to append a %s snapshot (use another -name)",
				*name, *dir, env.Backend, *backend)
		}
		next = env.Generation + 1
	}
	clf, trained, err := trainFromMboxes(*backend, *hamPath, *spamPath)
	if err != nil {
		return err
	}
	eng := engine.NewAt(clf, next, engine.Config{Name: *name})
	gen, err := engine.SaveEngine(st, *name, *backend, eng)
	if err != nil {
		return err
	}
	if *keep > 0 {
		if _, err := engine.Prune(st, *name, *keep); err != nil {
			return err
		}
	}
	ns, nh := clf.Counts()
	fmt.Printf("saved %s generation %d (%d messages: %d ham + %d spam) -> %s\n",
		*backend, gen, trained, nh, ns, *dir)
	return nil
}

// cmdResume restores the newest valid generation of a snapshot
// directory — the stored envelope names its backend, so no -backend
// flag — and either reports it (no mboxes) or classifies the given
// mboxes with it.
func cmdResume(args []string) error {
	fs := flag.NewFlagSet("resume", flag.ExitOnError)
	dir := fs.String("dir", "", "snapshot directory")
	name := fs.String("name", "sbfilter", "snapshot line name within the directory")
	workers := fs.Int("j", runtime.GOMAXPROCS(0), "batch-classification parallelism")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("resume needs -dir")
	}
	st, err := engine.NewDirStore(*dir)
	if err != nil {
		return err
	}
	eng, env, err := engine.ResumeEngine(st, *name, engine.Config{Name: *name, Workers: *workers})
	if err != nil {
		return err
	}
	ns, nh := eng.Classifier().Counts()
	fmt.Printf("resumed %s generation %d (%d ham, %d spam trained)\n", env.Backend, env.Generation, nh, ns)
	if fs.NArg() == 0 {
		return nil
	}
	return classifyMboxes(eng, fs.Args(),
		fmt.Sprintf("generation %d", env.Generation))
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	backend := backendFlag(fs)
	db := fs.String("db", "", "token database file")
	fs.Parse(args)
	if *db == "" {
		return fmt.Errorf("info needs -db")
	}
	clf, err := loadDB(*db, *backend)
	if err != nil {
		return err
	}
	ns, nh := clf.Counts()
	fmt.Printf("backend:  %s\n", *backend)
	fmt.Printf("messages: %d ham, %d spam\n", nh, ns)
	if v, ok := clf.(interface{ VocabSize() int }); ok {
		fmt.Printf("tokens:   %d\n", v.VocabSize())
	}
	return nil
}
