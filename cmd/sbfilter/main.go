// Command sbfilter is a standalone statistical spam filter over mbox
// archives: train a token database, classify messages, or score a
// single message from stdin — the filter a downstream user would
// actually deploy (and the system the paper attacks).
//
// The learner is pluggable: -backend selects any registered engine
// backend (sbayes, graham), and classification fans out across a
// worker pool (-j) through the batch-scoring engine.
//
// Usage:
//
//	sbfilter train    [-backend B] -db FILE -ham HAM.mbox -spam SPAM.mbox
//	sbfilter classify [-backend B] [-j N] -db FILE MBOX...
//	sbfilter score    [-backend B] -db FILE      (one message on stdin)
//	sbfilter info     [-backend B] -db FILE
//	sbfilter backends
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/mail"
	"repro/internal/sbayes"

	// Register the backends sbfilter does not otherwise import.
	_ "repro/internal/graham"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "train":
		err = cmdTrain(args)
	case "classify":
		err = cmdClassify(args)
	case "score":
		err = cmdScore(args)
	case "info":
		err = cmdInfo(args)
	case "backends":
		err = cmdBackends()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sbfilter: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  sbfilter train    [-backend B] -db FILE -ham HAM.mbox -spam SPAM.mbox
  sbfilter classify [-backend B] [-j N] -db FILE MBOX...
  sbfilter score    [-backend B] -db FILE      (reads one message from stdin)
  sbfilter info     [-backend B] -db FILE
  sbfilter backends

Backends: %s (default sbayes).
`, strings.Join(engine.Backends(), ", "))
}

// backendFlag adds the -backend flag to a flag set.
func backendFlag(fs *flag.FlagSet) *string {
	return fs.String("backend", "sbayes", "learner backend ("+strings.Join(engine.Backends(), "|")+")")
}

// newClassifier constructs a fresh classifier for a backend name.
func newClassifier(backend string) (engine.Classifier, error) {
	b, err := engine.Lookup(backend)
	if err != nil {
		return nil, err
	}
	return b.New(), nil
}

// loadMbox reads every message of an mbox file.
func loadMbox(path string) ([]*mail.Message, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return mail.NewMboxReader(f).ReadAll()
}

// loadDB constructs a backend classifier and restores its database.
func loadDB(path, backend string) (engine.Classifier, error) {
	clf, err := newClassifier(backend)
	if err != nil {
		return nil, err
	}
	p, ok := clf.(engine.Persistable)
	if !ok {
		return nil, fmt.Errorf("backend %q does not persist databases", backend)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if err := p.Load(f); err != nil {
		return nil, err
	}
	return clf, nil
}

func cmdBackends() error {
	for _, name := range engine.Backends() {
		b, err := engine.Lookup(name)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s %s\n", b.Name, b.Doc)
	}
	return nil
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	backend := backendFlag(fs)
	db := fs.String("db", "", "token database file to write")
	hamPath := fs.String("ham", "", "mbox of ham training messages")
	spamPath := fs.String("spam", "", "mbox of spam training messages")
	fs.Parse(args)
	if *db == "" || *hamPath == "" || *spamPath == "" {
		return fmt.Errorf("train needs -db, -ham and -spam")
	}
	clf, err := newClassifier(*backend)
	if err != nil {
		return err
	}
	p, ok := clf.(engine.Persistable)
	if !ok {
		return fmt.Errorf("backend %q does not persist databases", *backend)
	}
	ham, err := loadMbox(*hamPath)
	if err != nil {
		return err
	}
	spam, err := loadMbox(*spamPath)
	if err != nil {
		return err
	}
	// Bulk training goes through the engine's buffered stream.
	eng := engine.New(clf, engine.Config{Name: *backend})
	in, wait := eng.LearnStream(context.Background())
	for _, m := range ham {
		in <- engine.Labeled{Msg: m, Spam: false}
	}
	for _, m := range spam {
		in <- engine.Labeled{Msg: m, Spam: true}
	}
	close(in)
	trained, err := wait()
	if err != nil {
		return err
	}
	out, err := os.Create(*db)
	if err != nil {
		return err
	}
	if err := p.Save(out); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	ns, nh := clf.Counts()
	fmt.Printf("trained %s on %d messages (%d ham + %d spam) -> %s\n", *backend, trained, nh, ns, *db)
	return nil
}

func cmdClassify(args []string) error {
	fs := flag.NewFlagSet("classify", flag.ExitOnError)
	backend := backendFlag(fs)
	db := fs.String("db", "", "token database file")
	workers := fs.Int("j", runtime.GOMAXPROCS(0), "batch-classification parallelism")
	fs.Parse(args)
	if *db == "" || fs.NArg() == 0 {
		return fmt.Errorf("classify needs -db and at least one mbox")
	}
	clf, err := loadDB(*db, *backend)
	if err != nil {
		return err
	}
	eng := engine.New(clf, engine.Config{Name: *backend, Workers: *workers})

	// One batch call per mbox: the worker pool scores each archive in
	// parallel while only one archive is resident, and output streams
	// between archives in input order.
	counts := map[engine.Label]int{}
	for _, path := range fs.Args() {
		msgs, err := loadMbox(path)
		if err != nil {
			return err
		}
		results, err := eng.ClassifyBatch(context.Background(), msgs)
		if err != nil {
			return err
		}
		for i, res := range results {
			counts[res.Label]++
			subject := msgs[i].Subject()
			if len(subject) > 40 {
				subject = subject[:40]
			}
			fmt.Printf("%s:%d\t%-6s\t%.4f\t%s\n", path, i, res.Label, res.Score, subject)
		}
	}
	stats := eng.Stats()
	fmt.Printf("totals: %d ham, %d unsure, %d spam (%d msgs, %d workers, %v)\n",
		counts[engine.Ham], counts[engine.Unsure], counts[engine.Spam],
		stats.Classified, eng.Workers(), stats.BatchLatency.Round(time.Microsecond))
	return nil
}

func cmdScore(args []string) error {
	fs := flag.NewFlagSet("score", flag.ExitOnError)
	backend := backendFlag(fs)
	db := fs.String("db", "", "token database file")
	explain := fs.Bool("explain", false, "print per-token clues (sbayes only)")
	fs.Parse(args)
	if *db == "" {
		return fmt.Errorf("score needs -db")
	}
	clf, err := loadDB(*db, *backend)
	if err != nil {
		return err
	}
	f, isSBayes := clf.(*sbayes.Filter)
	if *explain && !isSBayes {
		return fmt.Errorf("-explain is only available for the sbayes backend")
	}
	msg, err := mail.Parse(os.Stdin)
	if err != nil {
		return err
	}
	label, score := clf.Classify(msg)
	fmt.Printf("%s\t%.4f\n", label, score)
	if *explain {
		for _, c := range f.Explain(msg) {
			marker := " "
			if c.Used {
				marker = "*"
			}
			fmt.Printf("%s %.4f %s\n", marker, c.Score, c.Token)
		}
	}
	return nil
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	backend := backendFlag(fs)
	db := fs.String("db", "", "token database file")
	fs.Parse(args)
	if *db == "" {
		return fmt.Errorf("info needs -db")
	}
	clf, err := loadDB(*db, *backend)
	if err != nil {
		return err
	}
	ns, nh := clf.Counts()
	fmt.Printf("backend:  %s\n", *backend)
	fmt.Printf("messages: %d ham, %d spam\n", nh, ns)
	if v, ok := clf.(interface{ VocabSize() int }); ok {
		fmt.Printf("tokens:   %d\n", v.VocabSize())
	}
	return nil
}
