// Command corpusgen materializes the synthetic data substitution to
// disk: a labeled email corpus (ham.mbox + spam.mbox) and the attack
// lexicons (aspell.txt, usenet.txt, optimal.txt), so they can be
// inspected or fed to cmd/sbfilter.
//
// Usage:
//
//	corpusgen -out DIR [-ham N] [-spam N] [-seed N] [-small]
//	          [-usenet-tokens N] [-usenet-k N] [-no-lexicons]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/lexicon"
	"repro/internal/stats"
	"repro/internal/textgen"
)

func main() {
	out := flag.String("out", "", "output directory (required)")
	nHam := flag.Int("ham", 1000, "ham messages to generate")
	nSpam := flag.Int("spam", 1000, "spam messages to generate")
	seed := flag.Uint64("seed", 1, "generation seed")
	small := flag.Bool("small", false, "use the scaled-down test universe")
	usenetTokens := flag.Int("usenet-tokens", 2_000_000, "usenet corpus sample size for the top-k lexicon")
	usenetK := flag.Int("usenet-k", 90_000, "usenet lexicon size")
	noLexicons := flag.Bool("no-lexicons", false, "skip writing lexicons")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "corpusgen: -out is required")
		flag.Usage()
		os.Exit(2)
	}

	ucfg := textgen.DefaultUniverseConfig()
	if *small {
		ucfg = textgen.UniverseConfig{
			CommonWords: 50, StandardWords: 700, FormalWords: 250,
			ColloquialWords: 290, SpamWords: 120, PersonalWords: 400,
		}
	}
	start := time.Now()
	u, err := textgen.NewUniverse(ucfg)
	if err != nil {
		fatal(err)
	}
	g, err := textgen.New(u, textgen.DefaultConfig())
	if err != nil {
		fatal(err)
	}
	r := stats.NewRNG(*seed)

	c := g.Corpus(r.Split("corpus"), *nHam, *nSpam)
	if err := c.SaveMboxPair(*out); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d ham + %d spam to %s (%v)\n", c.NumHam(), c.NumSpam(), *out,
		time.Since(start).Round(time.Millisecond))

	if *noLexicons {
		return
	}
	writeLex := func(name string, lex *lexicon.Lexicon) {
		path := filepath.Join(*out, name)
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := lex.Save(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d words)\n", path, lex.Len())
	}
	asp := lexicon.Aspell(u)
	writeLex("aspell.txt", asp)
	writeLex("optimal.txt", lexicon.Optimal(u))
	k := *usenetK
	if *small && k > 1000 {
		k = 900
	}
	us := lexicon.UsenetFromGenerator(g, r.Split("usenet"), *usenetTokens, k)
	writeLex("usenet.txt", us)
	fmt.Printf("usenet/aspell overlap: %d words\n", us.Overlap(asp))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "corpusgen: %v\n", err)
	os.Exit(1)
}
