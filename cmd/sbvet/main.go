// Command sbvet runs the repo's invariant analyzers (snapshotonce,
// statscomplete, ctxdrain, tokenizeonce — see internal/analysis).
//
// It speaks two dialects:
//
//   - Standalone, the way make lint uses it:
//
//     go run ./cmd/sbvet ./...
//
//     loads the module surrounding the working directory from source
//     and prints findings in go vet's file:line:col format, exiting 2
//     if there are any.
//
//   - As a go vet tool backend:
//
//     go vet -vettool=$(which sbvet) ./...
//
//     cmd/go probes the tool with -V=full and -flags, then invokes it
//     once per package with a vet config (*.cfg) naming the Go files
//     and the export data of every dependency. This is the
//     unitchecker protocol; diagnostics go to stderr and a non-zero
//     exit tells go vet the package failed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/suite"
)

// version is what -V=full reports. cmd/go only requires the reply to
// have the shape "<name> version <something...>" so it can stamp
// build IDs; the value matters only for cache invalidation.
const version = "sbvet version v1.0.0"

func main() {
	fs := flag.NewFlagSet("sbvet", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sbvet [packages]  |  sbvet <config>.cfg (go vet backend)\n")
		fs.PrintDefaults()
	}
	printVersion := fs.String("V", "", "print version and exit (go vet probe)")
	printFlags := fs.Bool("flags", false, "print analyzer flags as JSON and exit (go vet probe)")
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON instead of text")
	fs.Int("c", -1, "display offending line plus this many lines of context (accepted for go vet compatibility; ignored)")
	fs.Parse(os.Args[1:])

	switch {
	case *printVersion != "":
		// go vet sends -V=full and expects at least "name version ...".
		fmt.Println(version)
		return
	case *printFlags:
		// The suite exposes no tool-specific flags.
		fmt.Println("[]")
		return
	}

	args := fs.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0], *jsonOut))
	}
	os.Exit(standalone(args, *jsonOut))
}

// standalone loads the module containing the working directory from
// source and checks the packages matching the patterns (default
// "./...").
func standalone(patterns []string, jsonOut bool) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "sbvet: %v\n", err)
		return 1
	}
	root, err := findModuleRoot(cwd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sbvet: %v\n", err)
		return 1
	}
	findings, err := suite.CheckModule(root, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sbvet: %v\n", err)
		return 1
	}
	if jsonOut {
		emitJSON("command-line-arguments", groupByCategory(findings))
		return 0
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// findModuleRoot walks up from dir to the directory holding go.mod.
func findModuleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found in or above the working directory")
		}
		dir = parent
	}
}

// vetConfig mirrors the JSON config cmd/go writes for each package
// when driving a vet tool (the unitchecker protocol).
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string
	ImportMap    map[string]string
	PackageFile  map[string]string
	Standard     map[string]bool
	PackageVetx  map[string]string
	VetxOnly     bool
	VetxOutput   string

	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes the single package described by cfgPath using
// the compiler export data go vet hands us, so no source re-loading
// of dependencies is needed.
func unitcheck(cfgPath string, jsonOut bool) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sbvet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "sbvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sbvet: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	var typeErrs []error
	tc := &types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := tc.Check(cfg.ImportPath, fset, files, info)
	if len(typeErrs) > 0 && cfg.SucceedOnTypecheckFailure {
		// cmd/go sets this when the compiler is expected to fail the
		// package anyway; vet shouldn't duplicate the errors.
		return 0
	}

	pkg := &analysis.Package{
		PkgPath:    cfg.ImportPath,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
		TypeErrors: typeErrs,
	}

	// The interprocedural analyzers exchange facts through the vetx
	// files cmd/go threads between per-package runs: the dependencies'
	// facts seed the store, this package's accumulated facts (its own
	// plus the imported ones, so transport is transitive) are written
	// to VetxOutput for dependents. A facts-only run (VetxOnly: cmd/go
	// scheduling a dependency) does the same analysis but reports
	// nothing.
	checker := analysis.NewChecker(suite.Analyzers)
	find := func(path string) *types.Package {
		if path == cfg.ImportPath {
			return tpkg
		}
		if _, ok := cfg.PackageFile[path]; !ok {
			return nil
		}
		dep, err := compilerImporter.Import(path)
		if err != nil {
			return nil
		}
		return dep
	}
	for _, vetxFile := range cfg.PackageVetx {
		vetx, err := os.ReadFile(vetxFile)
		if err != nil {
			continue // a missing dep vetx costs its facts, not the run
		}
		if err := analysis.DecodeFacts(checker.Facts, vetx, find); err != nil {
			fmt.Fprintf(os.Stderr, "sbvet: %v\n", err)
			return 1
		}
	}
	checker.AddPackage(pkg)
	findings := checker.RunPackage(pkg)
	if cfg.VetxOutput != "" {
		vetx, err := analysis.EncodeFacts(checker.Facts, suite.Analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sbvet: %v\n", err)
			return 1
		}
		if err := os.WriteFile(cfg.VetxOutput, vetx, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "sbvet: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	if jsonOut {
		emitJSON(cfg.ID, groupByCategory(findings))
		return 0
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s\n", f.Position, f.Message)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// jsonDiagnostic is the per-finding shape of go vet's -json output.
type jsonDiagnostic struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

// groupByCategory buckets findings per analyzer name for -json.
func groupByCategory(findings []analysis.Finding) map[string][]jsonDiagnostic {
	out := make(map[string][]jsonDiagnostic)
	for _, f := range findings {
		cat := f.Category
		if cat == "" {
			cat = "sbvet"
		}
		out[cat] = append(out[cat], jsonDiagnostic{Posn: f.Position.String(), Message: f.Message})
	}
	return out
}

// emitJSON prints {pkgID: {analyzer: [diagnostics]}} to stdout, the
// framing go vet -json expects from a tool backend.
func emitJSON(pkgID string, diags map[string][]jsonDiagnostic) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "\t")
	enc.Encode(map[string]map[string][]jsonDiagnostic{pkgID: diags})
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
