// Command subvert regenerates every table and figure of the paper's
// evaluation. Each subcommand prints the paper-style rows/series for
// one exhibit; "all" runs the full suite.
//
// Usage:
//
//	subvert [flags] <exhibit>
//
// Exhibits: table1, fig1, fig2, fig3, fig4, fig5, roni, ratios, all.
//
// Flags:
//
//	-scale full|small   experiment scale (default full)
//	-seed N             override the experiment seed
//	-workers N          bound fold parallelism (0 = one per fold)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/scenario"
)

func main() {
	scale := flag.String("scale", "full", "experiment scale: full or small")
	seed := flag.Uint64("seed", 0, "override the experiment seed (0 keeps the default)")
	workers := flag.Int("workers", 0, "bound fold-level parallelism (0 = one goroutine per fold)")
	prevalence := flag.Float64("prevalence", 0, "override training spam prevalence (Table 1 also lists 0.75)")
	train := flag.Int("train", 0, "override the dictionary-attack training set size (Table 1 also lists 2000)")
	csvDir := flag.String("csv", "", "also write each exhibit's series as CSV into this directory")
	flag.Usage = usage
	flag.Parse()
	csvOut = *csvDir
	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	exhibit := flag.Arg(0)

	var cfg experiments.Config
	switch *scale {
	case "full":
		cfg = experiments.FullScale()
	case "small":
		cfg = experiments.SmallScale()
	default:
		fmt.Fprintf(os.Stderr, "subvert: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *prevalence != 0 {
		cfg.SpamPrevalence = *prevalence
	}
	if *train != 0 {
		cfg.TrainSize = *train
	}
	cfg.Workers = *workers
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}

	if exhibit == "table1" {
		// Table 1 needs no environment.
		fmt.Print(experiments.Table1(cfg))
		return
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "building environment (scale=%s, seed=%d)...\n", *scale, cfg.Seed)
	env, err := experiments.NewEnv(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "environment ready in %v: %s\n\n", time.Since(start).Round(time.Millisecond), env.Describe())

	run := map[string]func(*experiments.Env) error{
		"fig1": func(e *experiments.Env) error {
			res, err := experiments.RunFig1(e)
			return render("fig1", res, err)
		},
		"fig2": func(e *experiments.Env) error {
			res, err := experiments.RunFig2(e)
			return render("fig2", res, err)
		},
		"fig3": func(e *experiments.Env) error {
			res, err := experiments.RunFig3(e)
			return render("fig3", res, err)
		},
		"fig4": func(e *experiments.Env) error {
			res, err := experiments.RunFig4(e)
			return render("fig4", res, err)
		},
		"fig5": func(e *experiments.Env) error {
			res, err := experiments.RunFig5(e)
			return render("fig5", res, err)
		},
		"roni": func(e *experiments.Env) error {
			res, err := experiments.RunRONI(e)
			return render("roni", res, err)
		},
		"ratios": func(e *experiments.Env) error {
			res, err := experiments.RunTokenRatio(e)
			return render("ratios", res, err)
		},
		"informed": func(e *experiments.Env) error {
			res, err := experiments.RunInformed(e)
			return render("informed", res, err)
		},
		"pseudospam": func(e *experiments.Env) error {
			res, err := experiments.RunPseudospam(e)
			return render("pseudospam", res, err)
		},
		"transfer": func(e *experiments.Env) error {
			res, err := experiments.RunTransfer(e)
			return render("transfer", res, err)
		},
		"backends": func(e *experiments.Env) error {
			res, err := experiments.RunBackendTransfer(e)
			return render("backends", res, err)
		},
		"deploy":    runDeploy,
		"online":    runOnline,
		"sharded":   runSharded,
		"admission": runAdmission,
	}

	switch exhibit {
	case "all":
		fmt.Print(experiments.Table1(cfg))
		fmt.Println()
		for _, name := range []string{"ratios", "fig1", "fig2", "fig3", "fig4", "fig5", "roni", "informed", "pseudospam", "transfer", "backends"} {
			stepStart := time.Now()
			if err := run[name](env); err != nil {
				fatal(fmt.Errorf("%s: %w", name, err))
			}
			fmt.Fprintf(os.Stderr, "[%s finished in %v]\n\n", name, time.Since(stepStart).Round(time.Millisecond))
		}
	default:
		fn, ok := run[exhibit]
		if !ok {
			fmt.Fprintf(os.Stderr, "subvert: unknown exhibit %q\n", exhibit)
			usage()
			os.Exit(2)
		}
		if err := fn(env); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "total: %v\n", time.Since(start).Round(time.Millisecond))
}

// runDeploy simulates the §2.1 deployment three ways: clean, under
// the dictionary attack, and with RONI scrubbing the pipeline.
func runDeploy(e *experiments.Env) error {
	cfg := scenario.DefaultConfig()
	if e.Cfg.TrainSize < 2000 { // small scale
		cfg.Weeks = 4
		cfg.InitialMailStore = 400
		cfg.MessagesPerWeek = 200
		cfg.TestSize = 100
		cfg.AttackFraction = 0.05
		cfg.AttackStartWeek = 2
	}
	attack := core.NewDictionaryAttack(e.Usenet)
	variants := []struct {
		name   string
		mutate func(*scenario.Config)
	}{
		{"clean", func(c *scenario.Config) {}},
		{"attacked", func(c *scenario.Config) { c.Attack = attack }},
		{"RONI-scrubbed", func(c *scenario.Config) { c.Attack = attack; c.UseRONI = true }},
		{"graham-attacked", func(c *scenario.Config) { c.Backend = "graham"; c.Attack = attack }},
	}
	for _, v := range variants {
		c := cfg
		v.mutate(&c)
		res, err := scenario.Run(e.Gen, c, e.RNG("deploy-"+v.name))
		if err != nil {
			return fmt.Errorf("deploy %s: %w", v.name, err)
		}
		fmt.Printf("== %s ==\n%s\n", v.name, res.Render())
	}
	return nil
}

// runOnline simulates the same deployment per message through the
// serving engine: every verdict is the one the user saw at delivery,
// and each week's retrain is built in the background and swapped in
// a third of the way into the next week.
func runOnline(e *experiments.Env) error {
	cfg := scenario.DefaultConfig()
	if e.Cfg.TrainSize < 2000 { // small scale
		cfg.Weeks = 4
		cfg.InitialMailStore = 400
		cfg.MessagesPerWeek = 200
		cfg.TestSize = 100
		cfg.AttackFraction = 0.05
		cfg.AttackStartWeek = 2
	}
	cfg.RetrainLag = cfg.MessagesPerWeek / 3
	attack := core.NewDictionaryAttack(e.Usenet)
	variants := []struct {
		name   string
		mutate func(*scenario.Config)
	}{
		{"clean", func(c *scenario.Config) {}},
		{"attacked", func(c *scenario.Config) { c.Attack = attack }},
		{"attacked, incremental retraining", func(c *scenario.Config) {
			c.Attack = attack
			c.Retraining = scenario.RetrainIncremental
		}},
		{"attacked, chunked x4", func(c *scenario.Config) { c.Attack = attack; c.AttackChunks = 4 }},
		{"RONI-scrubbed", func(c *scenario.Config) { c.Attack = attack; c.UseRONI = true }},
	}
	for _, v := range variants {
		c := cfg
		v.mutate(&c)
		res, err := scenario.RunOnline(e.Gen, c, e.RNG("online-"+v.name))
		if err != nil {
			return fmt.Errorf("online %s: %w", v.name, err)
		}
		fmt.Printf("== %s ==\n%s\n", v.name, res.Render())
	}
	return nil
}

// runSharded serves the online deployment through a hash-by-recipient
// sharded engine: each user's mail lands on — and trains — one shard,
// so an attack addressed to a single victim poisons only that shard.
// The per-shard ham-loss table separates target damage from
// collateral, the observable the single-engine mode cannot produce.
func runSharded(e *experiments.Env) error {
	cfg := scenario.DefaultConfig()
	if e.Cfg.TrainSize < 2000 { // small scale
		cfg.Weeks = 4
		cfg.InitialMailStore = 400
		cfg.MessagesPerWeek = 200
		cfg.TestSize = 100
		cfg.AttackFraction = 0.05
		cfg.AttackStartWeek = 2
	}
	cfg.Shards = 4
	cfg.Recipients = 8
	cfg.RetrainLag = cfg.MessagesPerWeek / 3
	target := scenario.RecipientAddress(0)
	attack := core.NewDictionaryAttack(e.Usenet)
	variants := []struct {
		name   string
		mutate func(*scenario.Config)
	}{
		{"clean", func(c *scenario.Config) {}},
		{"targeted: all poison addressed to " + target, func(c *scenario.Config) {
			c.Attack = attack
			c.AttackRecipient = target
		}},
		{"spread: poison addressed across the population", func(c *scenario.Config) {
			c.Attack = attack
		}},
		{"targeted + RONI scrubbing at the gateway", func(c *scenario.Config) {
			c.Attack = attack
			c.AttackRecipient = target
			c.UseRONI = true
		}},
	}
	for _, v := range variants {
		c := cfg
		v.mutate(&c)
		if c.AttackRecipient != "" {
			fmt.Printf("== %s (routes to shard %d) ==\n", v.name, c.TargetShard())
		} else {
			fmt.Printf("== %s ==\n", v.name)
		}
		res, err := scenario.RunOnline(e.Gen, c, e.RNG("sharded-"+v.name))
		if err != nil {
			return fmt.Errorf("sharded %s: %w", v.name, err)
		}
		fmt.Println(res.Render())
	}
	return nil
}

// runAdmission replays the §4 attacks against guarded and unguarded
// engines at equal dose: the unguarded deployment collapses under the
// dictionary attack while the admission pipeline (flood gate →
// budgeted incremental RONI → quarantine, thresholds refit at every
// swap) holds ham loss to a small fraction of it — with a total probe
// bill strictly below what a single week-end batch RONI pass would
// spend. An adaptive attacker then demonstrates the feedback loop
// (dose collapses against the guard, ramps without it), ham-labeled
// pseudospam shows the structural gate catching what the impact-only
// defense waves through, and the focused attack shows the pipeline's
// honest limit: a narrow-vocabulary targeted payload passes the gate
// and mostly evades the probes, exactly as §5.1 predicts for RONI.
func runAdmission(e *experiments.Env) error {
	cfg := scenario.DefaultConfig()
	admit := scenario.AdmissionConfig{}
	if e.Cfg.TrainSize < 2000 { // small scale
		cfg.Weeks = 4
		cfg.InitialMailStore = 400
		cfg.MessagesPerWeek = 200
		cfg.TestSize = 100
		cfg.AttackFraction = 0.05
		cfg.AttackStartWeek = 2
		// The small-scale Usenet lexicon is only 1k words, so the flood
		// gate's bound scales down with it (organic mail stays far
		// below; the full-scale default is 1024 against a 90k payload).
		admit.FloodGateMaxDistinct = 500
	}
	cfg.RetrainLag = cfg.MessagesPerWeek / 3
	dict := core.NewDictionaryAttack(e.Usenet)

	run := func(name string, mutate func(*scenario.Config)) (*scenario.OnlineResult, error) {
		c := cfg
		mutate(&c)
		res, err := scenario.RunOnline(e.Gen, c, e.RNG("admission-"+name))
		if err != nil {
			return nil, fmt.Errorf("admission %s: %w", name, err)
		}
		fmt.Printf("== %s ==\n%s\n", name, res.Render())
		return res, nil
	}

	unguarded, err := run("unguarded under the dictionary attack", func(c *scenario.Config) {
		c.Attack = dict
	})
	if err != nil {
		return err
	}
	guarded, err := run("guarded: inline admission at the same dose", func(c *scenario.Config) {
		c.Attack = dict
		c.Admission = &admit
	})
	if err != nil {
		return err
	}

	totalProbes, maxBatch := 0, 0
	for _, w := range guarded.Weeks {
		totalProbes += w.Admission.Probes
		if w.Admission.BatchProbeEquivalent > maxBatch {
			maxBatch = w.Admission.BatchProbeEquivalent
		}
	}
	fmt.Printf("headline: final at-delivery ham loss %.1f%% guarded vs %.1f%% unguarded at equal dose;\n",
		100*guarded.FinalHamLoss(), 100*unguarded.FinalHamLoss())
	fmt.Printf("incremental probe budget: %d probes across %d weeks vs %d for ONE week-end batch RONI pass\n\n",
		totalProbes, len(guarded.Weeks), maxBatch)

	adaptive := func() core.Attacker {
		a, err := core.NewAdaptiveAttacker(dict, core.DefaultAdaptiveConfig())
		if err != nil {
			panic(err) // config is the validated default
		}
		return a
	}
	if _, err := run("adaptive attacker vs the guard (dose collapses)", func(c *scenario.Config) {
		c.Attack = adaptive()
		c.AttackAdaptive = true
		c.Admission = &admit
	}); err != nil {
		return err
	}
	if _, err := run("adaptive attacker unguarded (dose ramps)", func(c *scenario.Config) {
		c.Attack = adaptive()
		c.AttackAdaptive = true
	}); err != nil {
		return err
	}
	if _, err := run("pseudospam: dictionary payload under ham labels, guarded", func(c *scenario.Config) {
		c.Attack = dict
		c.AttackLabelHam = true
		c.Admission = &admit
	}); err != nil {
		return err
	}

	// The honest limit: a focused attack's narrow payload walks through
	// the structural gate, and its per-message impact is too small for
	// the probes — the admission counters show it being admitted.
	target := e.Gen.HamMessage(e.RNG("admission-target"))
	focused, err := core.NewFocusedAttack(target, 0.5, nil)
	if err != nil {
		return err
	}
	if _, err := run("focused attack vs the guard (the pipeline's limit)", func(c *scenario.Config) {
		c.Attack = focused
		c.Admission = &admit
	}); err != nil {
		return err
	}
	return nil
}

// renderable is any experiment result.
type renderable interface{ Render() string }

// csvOut, when non-empty, receives one CSV file per exhibit.
var csvOut string

// render prints a result, optionally exports it as CSV, and
// propagates the driver error.
func render[T renderable](name string, res T, err error) error {
	if err != nil {
		return err
	}
	fmt.Println(res.Render())
	if csvOut == "" {
		return nil
	}
	cw, ok := any(res).(experiments.CSVWriter)
	if !ok {
		return nil
	}
	if err := os.MkdirAll(csvOut, 0o755); err != nil {
		return err
	}
	path := filepath.Join(csvOut, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := cw.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: subvert [flags] <exhibit>

Exhibits (each regenerates one table/figure of the paper):
  table1   experimental parameter matrix
  fig1     dictionary attacks (optimal / usenet / aspell) vs. attack fraction
  fig2     focused attack vs. token guess probability
  fig3     focused attack vs. attack volume
  fig4     token scores before/after the focused attack
  fig5     dynamic threshold defense vs. the dictionary attack
  roni     RONI defense impact statistics (§5.1)
  ratios   attack-to-corpus token volume check (§4.2)

Extensions (features the paper sketches but does not evaluate):
  informed    constrained-optimal attack under a word budget (§3.4)
  pseudospam  ham-labeled attack placing spam in the inbox (§2.2)
  transfer    the attack against BogoFilter / SpamAssassin profiles (conclusion)
  backends    the attack against every registered learner backend (sbayes, graham)
  deploy      §2.1 weekly-retraining deployment: clean / attacked / RONI-scrubbed /
              graham backend under attack
  online      the same deployment one message at a time through the serving
              engine: at-delivery verdicts, background retrains swapped in
              mid-week (periodic vs. incremental, replicated vs. chunked)
  sharded     the online deployment partitioned across recipient-hashed
              engine shards: an attack addressed to one victim poisons only
              that user's shard (per-shard target vs. collateral damage)
  admission   the §4 attacks against guarded vs. unguarded engines: inline
              training-data vetting (flood gate → budgeted incremental RONI →
              quarantine, thresholds refit at each swap) holds ham loss to a
              fraction of the unguarded run below one batch pass's probe
              bill; adaptive attacker, ham-labeled pseudospam, focused limit

  all      everything above

Flags:
`)
	flag.PrintDefaults()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "subvert: %v\n", err)
	os.Exit(1)
}
