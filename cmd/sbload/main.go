// Command sbload drives a live sbserved daemon with a closed-loop
// synthetic workload and reports throughput and latency percentiles
// in `go test -bench` format, so cmd/benchjson can archive the run as
// a machine-readable artifact.
//
// The traffic mirrors the scenario population: organic ham and spam
// from the shared synthetic universe, plus an attacker mix submitted
// through POST /learn — dictionary-attack mail (the paper's §4.1
// broad poisoning, which the daemon's flood gate should reject) and
// focused-attack mail targeting one victim message (§4.2, which the
// RONI probe and quarantine absorb). Each worker runs its own RNG
// split, so a run is deterministic for a given seed and worker count.
//
// Usage:
//
//	sbserved -addr :8525 &
//	sbload -addr http://127.0.0.1:8525 -duration 10s -workers 8 | benchjson -out BENCH.json
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/mail"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/stats"
	"repro/internal/textgen"
)

func main() {
	var (
		addr       = flag.String("addr", "http://127.0.0.1:8525", "base URL of the sbserved daemon")
		duration   = flag.Duration("duration", 10*time.Second, "load duration")
		workers    = flag.Int("workers", 8, "closed-loop worker count")
		seed       = flag.Uint64("seed", 1, "deterministic seed")
		learnFrac  = flag.Float64("learn-frac", 0.10, "fraction of operations that are learn submissions")
		batchFrac  = flag.Float64("batch-frac", 0.15, "fraction of operations that are NDJSON classify batches")
		batchSize  = flag.Int("batch", 32, "messages per NDJSON batch")
		attackFrac = flag.Float64("attack-frac", 0.3, "fraction of learn submissions that are attack mail")
		attack     = flag.String("attack", "mixed", "attack variant: dictionary, focused, mixed, none")
		spamFrac   = flag.Float64("spam-frac", 0.4, "spam fraction of organic traffic")
		warmup     = flag.Duration("warmup", 15*time.Second, "how long to wait for /healthz")
	)
	flag.Parse()

	if err := run(*addr, *duration, *workers, *seed, *learnFrac, *batchFrac, *batchSize, *attackFrac, *attack, *spamFrac, *warmup); err != nil {
		log.Fatal(err)
	}
}

// newGenerator matches the population sbserved bootstraps from, so
// organic traffic scores against a vocabulary the filter knows.
func newGenerator() *textgen.Generator {
	u := textgen.MustUniverse(textgen.UniverseConfig{
		CommonWords:     50,
		StandardWords:   700,
		FormalWords:     250,
		ColloquialWords: 290,
		SpamWords:       120,
		PersonalWords:   400,
	})
	return textgen.MustNew(u, textgen.DefaultConfig())
}

// opKind indexes the per-operation collectors.
type opKind int

const (
	opClassify opKind = iota
	opBatch
	opLearn
	numOps
)

var opNames = [numOps]string{"classify", "batch", "learn"}

// collector accumulates one worker's measurements for one operation.
type collector struct {
	count    int
	errors   int
	shed     int // learn only: 503 + Retry-After responses
	accepted int // learn only: 202 responses
	messages int // batch only: messages scored
	lat      []time.Duration
}

func (c *collector) record(d time.Duration) {
	c.count++
	c.lat = append(c.lat, d)
}

// merge folds o into c.
func (c *collector) merge(o *collector) {
	c.count += o.count
	c.errors += o.errors
	c.shed += o.shed
	c.accepted += o.accepted
	c.messages += o.messages
	c.lat = append(c.lat, o.lat...)
}

func run(addr string, duration time.Duration, workers int, seed uint64, learnFrac, batchFrac float64, batchSize int, attackFrac float64, attackKind string, spamFrac float64, warmup time.Duration) error {
	gen := newGenerator()
	root := stats.NewRNG(seed)

	// Attack builders share the universe the organic traffic comes
	// from: the dictionary variant floods the whole lexicon, the
	// focused variant guesses at one victim message's tokens.
	dict := core.NewOptimalAttack(gen.Universe())
	setupRNG := root.Split("setup")
	target := gen.HamMessage(setupRNG)
	headerPool := []*mail.Message{gen.HamMessage(setupRNG), gen.HamMessage(setupRNG), gen.HamMessage(setupRNG)}
	focused, err := core.NewFocusedAttack(target, 0.3, headerPool)
	if err != nil {
		return err
	}
	switch attackKind {
	case "dictionary", "focused", "mixed", "none":
	default:
		return fmt.Errorf("unknown -attack %q (want dictionary, focused, mixed, none)", attackKind)
	}

	client := &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        2 * workers,
			MaxIdleConnsPerHost: 2 * workers,
		},
		Timeout: 30 * time.Second,
	}
	if err := waitHealthy(client, addr, warmup); err != nil {
		return err
	}

	// Scrape the daemon's own instruments before the run so the report
	// can delta them afterwards. A daemon launched without -metrics
	// answers 404 and the server-side lines are skipped; a 200 that
	// fails to parse or validate is an error — the exposition format is
	// part of the daemon's contract and this is its smoke check.
	before, scraped, err := scrapeMetrics(client, addr)
	if err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), duration)
	defer cancel()

	results := make([][numOps]collector, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lw := &loadWorker{
				client: client, addr: addr, gen: gen,
				rng:  root.Split(fmt.Sprintf("worker-%d", w)),
				dict: dict, focused: focused, attackKind: attackKind,
				learnFrac: learnFrac, batchFrac: batchFrac,
				batchSize: batchSize, attackFrac: attackFrac, spamFrac: spamFrac,
			}
			lw.loop(ctx, &results[w])
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var merged [numOps]collector
	for w := range results {
		for op := opKind(0); op < numOps; op++ {
			merged[op].merge(&results[w][op])
		}
	}
	report(os.Stdout, &merged, elapsed)

	if scraped {
		after, ok, err := scrapeMetrics(client, addr)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("daemon served /metrics before the run but not after")
		}
		if err := reportServerSide(os.Stdout, before, after, &merged); err != nil {
			return err
		}
	}
	return nil
}

// scrapeMetrics fetches and parses GET /metrics. ok=false means the
// daemon runs without a registry (404) — not an error; any 200 body
// must parse and validate or the run fails.
func scrapeMetrics(client *http.Client, addr string) (*obs.ParsedMetrics, bool, error) {
	resp, err := client.Get(addr + "/metrics")
	if err != nil {
		return nil, false, fmt.Errorf("scrape /metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return nil, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, false, fmt.Errorf("scrape /metrics: unexpected status %d", resp.StatusCode)
	}
	pm, err := obs.ParseText(resp.Body)
	if err != nil {
		return nil, false, fmt.Errorf("scrape /metrics: %w", err)
	}
	return pm, true, nil
}

// serverRoutes maps each load operation to the serve route label its
// requests land on.
var serverRoutes = [numOps]string{"classify", "classify_batch", "learn"}

// reportServerSide deltas the daemon's per-route latency histograms
// across the run and prints them next to the client-observed
// percentiles — the cross-check that the server's own instruments
// agree with what clients experienced. Server-side quantiles are
// interpolated from fixed buckets, so they bracket rather than match
// the exact client ranks; what must hold is that both sides saw the
// same requests, which is checked by count.
func reportServerSide(out io.Writer, before, after *obs.ParsedMetrics, merged *[numOps]collector) error {
	for op := opKind(0); op < numOps; op++ {
		c := &merged[op]
		if c.count == 0 {
			continue
		}
		route := obs.L("route", serverRoutes[op])
		prev, err := before.Histogram("serve_request_seconds", route)
		if err != nil {
			// The route had no traffic before the run; delta from zero.
			prev = obs.HistogramSnapshot{}
		}
		cur, err := after.Histogram("serve_request_seconds", route)
		if err != nil {
			return fmt.Errorf("server-side %s: %w", opNames[op], err)
		}
		delta := cur
		if prev.Count > 0 || len(prev.Counts) > 0 {
			if delta, err = cur.Sub(prev); err != nil {
				return fmt.Errorf("server-side %s: %w", opNames[op], err)
			}
		}
		if delta.Count < uint64(c.count) {
			return fmt.Errorf("server-side %s: histogram grew by %d but clients completed %d requests",
				opNames[op], delta.Count, c.count)
		}
		fmt.Fprintf(out, "BenchmarkServeLoad/%s/server \t%8d\t%12.0f p50-ns\t%12.0f p90-ns\t%12.0f p99-ns\n",
			opNames[op], delta.Count,
			delta.Quantile(0.50)*1e9, delta.Quantile(0.90)*1e9, delta.Quantile(0.99)*1e9)
	}
	return nil
}

// waitHealthy polls /healthz until the daemon answers.
func waitHealthy(client *http.Client, addr string, warmup time.Duration) error {
	deadline := time.Now().Add(warmup)
	for {
		resp, err := client.Get(addr + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon at %s not healthy after %s", addr, warmup)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// loadWorker is one closed-loop client.
type loadWorker struct {
	client     *http.Client
	addr       string
	gen        *textgen.Generator
	rng        *stats.RNG
	dict       *core.DictionaryAttack
	focused    *core.FocusedAttack
	attackKind string

	learnFrac, batchFrac, attackFrac, spamFrac float64
	batchSize                                  int
}

func (w *loadWorker) loop(ctx context.Context, out *[numOps]collector) {
	for ctx.Err() == nil {
		x := w.rng.Float64()
		switch {
		case x < w.learnFrac:
			w.doLearn(ctx, &out[opLearn])
		case x < w.learnFrac+w.batchFrac:
			w.doBatch(ctx, &out[opBatch])
		default:
			w.doClassify(ctx, &out[opClassify])
		}
	}
}

// organic draws one legitimate-population message.
func (w *loadWorker) organic() *mail.Message {
	return w.gen.Message(w.rng, w.rng.Bernoulli(w.spamFrac))
}

// attackMail draws one poisoning candidate per the configured mix.
func (w *loadWorker) attackMail() *mail.Message {
	kind := w.attackKind
	if kind == "mixed" {
		if w.rng.Bernoulli(0.5) {
			kind = "dictionary"
		} else {
			kind = "focused"
		}
	}
	if kind == "dictionary" {
		return w.dict.BuildAttack(w.rng)
	}
	return w.focused.BuildAttack(w.rng)
}

func (w *loadWorker) post(ctx context.Context, path, contentType string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.addr+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", contentType)
	return w.client.Do(req)
}

func (w *loadWorker) doClassify(ctx context.Context, c *collector) {
	body, _ := json.Marshal(serve.ClassifyRequest{Message: serve.WireFromMail(w.organic())})
	start := time.Now()
	resp, err := w.post(ctx, "/classify", "application/json", body)
	if err != nil {
		if ctx.Err() == nil {
			c.errors++
		}
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		c.errors++
		return
	}
	c.record(time.Since(start))
}

func (w *loadWorker) doBatch(ctx context.Context, c *collector) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := 0; i < w.batchSize; i++ {
		enc.Encode(serve.WireFromMail(w.organic()))
	}
	start := time.Now()
	resp, err := w.post(ctx, "/classify/batch", "application/x-ndjson", buf.Bytes())
	if err != nil {
		if ctx.Err() == nil {
			c.errors++
		}
		return
	}
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) > 0 {
			lines++
		}
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || lines != w.batchSize {
		c.errors++
		return
	}
	c.messages += lines
	c.record(time.Since(start))
}

func (w *loadWorker) doLearn(ctx context.Context, c *collector) {
	var m *mail.Message
	spam := false
	if w.attackKind != "none" && w.rng.Bernoulli(w.attackFrac) {
		// The poisoning attempt: attack mail submitted under the spam
		// label (the paper's contamination assumption).
		m, spam = w.attackMail(), true
	} else {
		spam = w.rng.Bernoulli(w.spamFrac)
		m = w.gen.Message(w.rng, spam)
	}
	body, _ := json.Marshal(serve.LearnRequest{Message: serve.WireFromMail(m), Spam: spam})
	start := time.Now()
	resp, err := w.post(ctx, "/learn", "application/json", body)
	if err != nil {
		if ctx.Err() == nil {
			c.errors++
		}
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusAccepted:
		c.accepted++
	case http.StatusServiceUnavailable:
		// Load shedding: the daemon degraded to score-only. The
		// request still completed — count its latency, tally the shed.
		c.shed++
	default:
		c.errors++
		return
	}
	c.record(time.Since(start))
}

// report prints one `go test -bench`-shaped line per operation, which
// cmd/benchjson parses into the perf artifact.
func report(out io.Writer, merged *[numOps]collector, elapsed time.Duration) {
	total := 0
	for op := opKind(0); op < numOps; op++ {
		c := &merged[op]
		total += c.count
		if c.count == 0 {
			continue
		}
		sort.Slice(c.lat, func(i, j int) bool { return c.lat[i] < c.lat[j] })
		var sum time.Duration
		for _, d := range c.lat {
			sum += d
		}
		mean := sum / time.Duration(c.count)
		rps := float64(c.count) / elapsed.Seconds()
		var b strings.Builder
		fmt.Fprintf(&b, "BenchmarkServeLoad/%s \t%8d\t%12d ns/op\t%10.1f req/s", opNames[op], c.count, mean.Nanoseconds(), rps)
		fmt.Fprintf(&b, "\t%12d p50-ns\t%12d p90-ns\t%12d p99-ns",
			percentile(c.lat, 0.50).Nanoseconds(),
			percentile(c.lat, 0.90).Nanoseconds(),
			percentile(c.lat, 0.99).Nanoseconds())
		switch op {
		case opLearn:
			fmt.Fprintf(&b, "\t%8d accepted\t%8d shed", c.accepted, c.shed)
		case opBatch:
			fmt.Fprintf(&b, "\t%10.1f msgs/s", float64(c.messages)/elapsed.Seconds())
		}
		if c.errors > 0 {
			fmt.Fprintf(&b, "\t%8d errors", c.errors)
		}
		fmt.Fprintln(out, b.String())
	}
	fmt.Fprintf(out, "BenchmarkServeLoad/all \t%8d\t%12d ns/op\t%10.1f req/s\n",
		total, elapsed.Nanoseconds()/int64(max(total, 1)), float64(total)/elapsed.Seconds())
}

// percentile reads the p-quantile from sorted latencies.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}
