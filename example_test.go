package repro_test

import (
	"fmt"

	"repro"
)

// smallGenerator builds a scaled-down generator for fast, stable
// example output.
func smallGenerator() *repro.Generator {
	cfg := repro.SmallScaleConfig()
	g, err := repro.NewGeneratorWith(cfg.Universe, cfg.Gen)
	if err != nil {
		panic(err)
	}
	return g
}

// ExampleTrainFilter shows the basic train-and-classify loop.
func ExampleTrainFilter() {
	gen := smallGenerator()
	rng := repro.NewRNG(1)
	inbox := gen.Corpus(rng, 200, 200)
	filter := repro.TrainFilter(inbox, repro.DefaultFilterOptions(), nil)

	hamLabel, _ := filter.Classify(gen.HamMessage(rng))
	spamLabel, _ := filter.Classify(gen.SpamMessage(rng))
	fmt.Println("fresh ham :", hamLabel)
	fmt.Println("fresh spam:", spamLabel)
	// Output:
	// fresh ham : ham
	// fresh spam: spam
}

// ExampleNewDictionaryAttack shows the §3.2 attack breaking a filter
// with 1% training-set control.
func ExampleNewDictionaryAttack() {
	gen := smallGenerator()
	rng := repro.NewRNG(2)
	inbox := gen.Corpus(rng, 300, 300)
	filter := repro.TrainFilter(inbox, repro.DefaultFilterOptions(), nil)

	target := gen.HamMessage(rng)
	before, _ := filter.Classify(target)

	attack := repro.NewOptimalAttack(gen.Universe())
	n := repro.AttackSize(0.05, inbox.Len())
	filter.LearnWeighted(attack.BuildAttack(rng), true, n)
	after, _ := filter.Classify(target)

	fmt.Println("before:", before)
	fmt.Println("after :", after != repro.Ham)
	// Output:
	// before: ham
	// after : true
}

// ExampleNewFocusedAttack shows the §3.3 targeted attack.
func ExampleNewFocusedAttack() {
	gen := smallGenerator()
	rng := repro.NewRNG(3)
	inbox := gen.Corpus(rng, 300, 300)
	filter := repro.TrainFilter(inbox, repro.DefaultFilterOptions(), nil)

	target := gen.HamMessage(rng)
	attack, err := repro.NewFocusedAttack(target, 0.9, inbox.Spam())
	if err != nil {
		panic(err)
	}
	fmt.Println(attack.Taxonomy())

	filter.LearnWeighted(attack.BuildAttack(rng), true, 60)
	label, _ := filter.Classify(target)
	fmt.Println("target blocked:", label != repro.Ham)
	// Output:
	// Causative Availability Targeted
	// target blocked: true
}

// ExampleNewRONI shows the §5.1 defense rejecting an attack email.
func ExampleNewRONI() {
	gen := smallGenerator()
	rng := repro.NewRNG(4)
	pool := gen.Corpus(rng, 400, 400)
	roni, err := repro.NewRONI(repro.DefaultRONIConfig(), pool, repro.DefaultFilterOptions(), nil, rng)
	if err != nil {
		panic(err)
	}
	attack := repro.NewDictionaryAttack(repro.AspellLexicon(gen.Universe()))
	fmt.Println("attack email rejected :", roni.ShouldReject(attack.BuildAttack(rng), true))
	fmt.Println("ordinary spam rejected:", roni.ShouldReject(gen.SpamMessage(rng), true))
	// Output:
	// attack email rejected : true
	// ordinary spam rejected: false
}

// ExampleAttackSize shows the paper's attack-count arithmetic.
func ExampleAttackSize() {
	fmt.Println(repro.AttackSize(0.01, 10000))
	fmt.Println(repro.AttackSize(0.02, 10000))
	// Output:
	// 101
	// 204
}
