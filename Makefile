# Tier-1 verification and day-to-day targets.
#
#   make build       compile every package
#   make test        run the full test suite
#   make race        run the concurrency-sensitive suites under -race
#                    (admission vetting + quarantine, engine snapshot
#                    swap + sharded fan-out + guarded training, eval
#                    parallelism, scenario online serving, the HTTP
#                    front-end's shed/wedge tests, and the root
#                    facade's end-to-end serving tests)
#   make vet         static checks
#   make lint        run the repo's own analyzer suite (cmd/sbvet:
#                    snapshotonce, statscomplete, ctxdrain,
#                    tokenizeonce, plus the interprocedural admitflow,
#                    hookorder, facadeexport, atomicfield — see
#                    internal/analysis); any finding fails the build
#   make lint-vettool  the same suite driven by `go vet -vettool=`,
#                    exercising the unitchecker protocol and the
#                    cross-package fact transport CI also runs
#   make fuzz        short fuzz smoke over the persistence decoders
#                    ($(FUZZTIME) per target; CI runs it, so a format
#                    regression that panics on garbage cannot land)
#   make cover       run the test suite with coverage and write
#                    cover.out + the per-function summary cover.txt
#                    (CI uploads both)
#   make bench       run all benchmarks (one per exhibit + micro-benchmarks)
#   make bench-tokenize  just the tokenizer microbench (stream vs the
#                    legacy []string path, MB/s and allocs/op) — the
#                    fast loop for tokenize-once pipeline work
#   make bench-json  run the benchmarks and write $(BENCH_JSON) as a
#                    machine-readable artifact (CI uploads it, so the
#                    perf trajectory accumulates across PRs)
#   make serve-bench run cmd/sbload against a live cmd/sbserved daemon
#                    and write $(SERVE_BENCH_JSON): end-to-end serving
#                    throughput and latency percentiles, learn
#                    accept/shed splits under an attacker mix, plus
#                    server-side percentiles scraped from /metrics and
#                    cross-checked against the client's view (a scrape
#                    that fails to parse fails the target)
#   make check       build + vet + lint + test + race (CI runs the
#                    same pieces, but folds the plain test pass into
#                    `make cover` and adds `make fuzz`)

GO ?= go
BENCH_JSON ?= BENCH_PR8.json
BENCHTIME  ?= 1s
FUZZTIME   ?= 10s
SERVE_BENCH_JSON     ?= BENCH_PR10.json
SERVE_BENCH_ADDR     ?= 127.0.0.1:18525
SERVE_BENCH_DURATION ?= 10s
SERVE_BENCH_WORKERS  ?= 8

.PHONY: build test race vet lint lint-vettool fuzz cover bench bench-tokenize bench-json serve-bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race . ./internal/admission/ ./internal/engine/ ./internal/eval/ ./internal/scenario/ ./internal/serve/

vet:
	$(GO) vet ./...

# The project-specific invariants (snapshot-once serving, complete
# Stats accounting, ctx-aware channel drains, fenced tokenization,
# guarded training paths, hook ordering, facade completeness, atomic
# field discipline).
lint:
	$(GO) run ./cmd/sbvet ./...

# The same suite as a vet backend: go vet drives sbvet per package via
# the unitchecker protocol, with analyzer facts flowing between
# packages through .vetx files.
lint-vettool:
	$(GO) build -o $(CURDIR)/sbvet.bin ./cmd/sbvet
	$(GO) vet -vettool=$(CURDIR)/sbvet.bin ./...
	rm -f $(CURDIR)/sbvet.bin

# `go test -fuzz` takes one target per invocation, so one line per
# fuzz target. Each also replays its committed seed corpus first.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzSBayesSaveLoad -fuzztime=$(FUZZTIME) ./internal/sbayes/
	$(GO) test -run='^$$' -fuzz=FuzzGrahamSaveLoad -fuzztime=$(FUZZTIME) ./internal/graham/
	$(GO) test -run='^$$' -fuzz=FuzzTokenStream -fuzztime=$(FUZZTIME) ./internal/tokenize/

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out > cover.txt
	@tail -1 cover.txt

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

bench-tokenize:
	$(GO) test -bench=BenchmarkTokenizeMessage -benchmem -run=^$$ .

# Two steps rather than a pipe: /bin/sh has no pipefail, and a piped
# `go test` failure would otherwise exit 0 and archive a truncated
# artifact as green.
bench-json:
	$(GO) test -bench=. -benchmem -benchtime=$(BENCHTIME) -timeout=30m -run=^$$ . \
		> $(BENCH_JSON:.json=.txt)
	$(GO) run ./cmd/benchjson -out $(BENCH_JSON) < $(BENCH_JSON:.json=.txt)

# End-to-end serving benchmark: a real daemon under closed-loop load.
# The daemon runs in the recipe's own shell with a kill trap, so a
# failed load run cannot leak the process; the benchjson conversion is
# a separate step for the same no-pipefail reason as bench-json.
serve-bench:
	$(GO) build -o $(CURDIR)/sbserved.bin ./cmd/sbserved
	$(GO) build -o $(CURDIR)/sbload.bin ./cmd/sbload
	$(CURDIR)/sbserved.bin -addr $(SERVE_BENCH_ADDR) & \
	SERVED_PID=$$!; \
	trap 'kill $$SERVED_PID 2>/dev/null' EXIT; \
	$(CURDIR)/sbload.bin -addr http://$(SERVE_BENCH_ADDR) \
		-duration $(SERVE_BENCH_DURATION) -workers $(SERVE_BENCH_WORKERS) \
		> $(SERVE_BENCH_JSON:.json=.txt)
	$(GO) run ./cmd/benchjson -out $(SERVE_BENCH_JSON) < $(SERVE_BENCH_JSON:.json=.txt)
	rm -f $(CURDIR)/sbserved.bin $(CURDIR)/sbload.bin

check: build vet lint test race
