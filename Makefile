# Tier-1 verification and day-to-day targets.
#
#   make build   compile every package
#   make test    run the full test suite
#   make race    run the concurrency-sensitive suites under -race
#                (engine snapshot swap, eval parallelism, scenario
#                online serving)
#   make vet     static checks
#   make bench   run all benchmarks (one per exhibit + micro-benchmarks)
#   make check   build + vet + test + race (what CI runs)

GO ?= go

.PHONY: build test race vet bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/engine/ ./internal/eval/ ./internal/scenario/

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

check: build vet test race
