// Package repro is the public API of this reproduction of Nelson et
// al., "Exploiting Machine Learning to Subvert Your Spam Filter"
// (LEET/NSDI-workshop 2008).
//
// The API is interface-first: every learner implements Classifier
// (Learn/Unlearn/Classify/Score), backends are constructed by name
// through the engine registry (NewClassifier, Backends), and the
// Engine service scores over any of them. The attacks, the defenses,
// the evaluation harness, and the deployment simulators all operate
// on the interface, mirroring the paper's claim that Causative
// Availability attacks exploit the statistical learning approach
// rather than one filter implementation.
//
// The Engine is a zero-downtime serving layer: the classifier lives
// behind an atomically swappable immutable snapshot, batches and
// single-message verdicts always read one consistent generation, and
// Retrain builds the replacement off the serving path and publishes
// it with a single atomic store — scoring continues at full speed
// throughout, and no verdict is ever computed against a half-trained
// filter. Backends with the Cloner capability additionally support
// incremental retraining (clone the snapshot, train only the new
// examples). The deployment simulator exposes both views of that
// timeline: RunDeployment measures weekly test-set confusions after
// each retrain, and RunOnlineDeployment feeds every message through
// the engine one at a time, recording the verdict each user actually
// received while retrains swap in mid-week.
//
// Sharded scales that serving layer out: one logical filter
// partitioned across N Engine shards routed by a recipient-address
// hash, with the same surface (Classify, batch scoring with
// input-order restitching, per-shard and all-shards retraining, a
// routed LearnStream) and Stats that aggregate per-shard counters
// into a combined view with per-shard breakdown. Because every user's
// mail lands on — and trains — exactly one shard, batch throughput
// scales across shards, and a poisoning attack addressed to a single
// victim (the §4.3 targeted setting) degrades only that user's shard;
// DeploymentConfig.Shards runs the online simulation in this mode and
// reports per-shard at-delivery confusions separating target damage
// from collateral.
//
// # Snapshot persistence
//
// The serving layer is durable: SaveEngine persists an engine's
// current snapshot — the classifier and its generation, read in one
// consistent atomic load — into a SnapshotStore, and ResumeEngine
// restores an engine from the newest generation that validates, so a
// restarted deployment resumes the generation line instead of
// restarting it (Sharded.SaveAll / ResumeSharded do the same per
// shard, each shard keeping its own independent line). Every
// persisted snapshot is a self-describing envelope:
//
//	magic    "SNAP" 0x01 (format version)
//	uvarint  len(backend), backend registry name
//	uvarint  generation
//	uvarint  len(payload), payload (the backend's Save output)
//	uint32   big-endian CRC-32 (IEEE) of every preceding byte
//
// The stamped backend name means resume needs no out-of-band
// configuration — the registry reconstructs the right classifier —
// and the trailing checksum rejects truncated or corrupted files
// before partial state can load. Resume scans generations newest to
// oldest and falls back past invalid ones, so one bad file costs one
// generation of history, never the deployment; a store with no valid
// generation fails with ErrNoSnapshot. The filesystem store writes
// via temp-file + rename (atomic against crashes mid-save) and keeps
// old generations until PruneSnapshots removes them. Golden-file
// tests pin the envelope and both backend database formats, and
// native fuzz targets hold the decoders to "error, never panic,
// never partial state"; a format change must consciously bump the
// version byte. DeploymentConfig.Checkpoints runs the online
// simulator in durable mode (checkpoint every N retrains, simulated
// crash and resume at a configured week).
//
// # Admission control
//
// The serving layer also guards its own training path. The paper's
// causative threat is that poison reaches the filter through training,
// and its defenses are evaluated as week-end batch steps; the
// admission pipeline runs them inline instead. An Admitter vets every
// candidate training example (Accept / Quarantine / Reject, with a
// reason) before it can influence a snapshot:
//
//   - TokenFloodGate rejects dictionary-style wide-vocabulary payloads
//     on structure alone — free, and label-blind, so ham-labeled
//     pseudospam does not slip it;
//   - IncrementalRONI runs the §5.1 clone-and-probe impact measurement
//     under an amortized per-message budget, memoizing verdicts by
//     payload identity (a replicated attack costs one probe) and
//     quarantining what the budget cannot cover;
//   - Quarantine holds deferred candidates until the next snapshot
//     swap, where they are re-vetted with freshly granted budget and
//     released into training or dropped;
//   - AdmissionChain / SampledAdmitter compose admitters into a
//     policy.
//
// NewGuarded (and NewGuardedSharded, which counts each decision
// against the shard the example routes to) threads a policy through
// LearnStream / Retrain / RetrainIncremental, exposes the admission
// tallies in EngineStats, and runs publish hooks at every snapshot
// swap — where the §5.2 dynamic-threshold defense refits the
// replacement's cutoffs (DynamicThreshold.Refit, via the
// ThresholdSetter capability) before it goes live. Scoring is never
// blocked: admission sits on the training path only.
// DeploymentConfig.Admission runs the online simulator in this mode,
// reporting per-week admitted/quarantined/rejected splits (organic
// vs. attack) and the probe bill against what one week-end batch pass
// would cost; DeploymentConfig.AttackAdaptive and AttackLabelHam
// supply the adversaries that stress it (a dose-adapting attacker and
// ham-labeled pseudospam).
//
// # Serving
//
// HTTPServer puts the guarded engine on the network: an http.Handler
// (stdlib only) exposing single-message and NDJSON-streaming
// classify/score endpoints, a learn endpoint that routes every
// submission through the admission guard — the admitflow analyzer
// proves the daemon has no other training path — and admin endpoints
// for deterministic flush, snapshot save, and in-place resume (which
// restores the admission sidecar, so a resume cannot amnesty held
// mail). The learn path is asynchronous and bounded: submissions
// enter a fixed-depth queue consumed by one publisher goroutine, and
// when the queue is full — backlog, or an admitter wedged mid-probe —
// the daemon sheds the submission with 503 + Retry-After and keeps
// classifying at full speed. Scoring never waits on training: the
// batch endpoints are gated only by their own inflight semaphore, the
// learn queue holds no scoring resources, and a wedged admitter can
// at worst degrade the daemon to score-only. cmd/sbserved wires this
// into a runnable daemon (flood gate + incremental RONI + quarantine,
// snapshot-dir persistence with save-on-shutdown and
// resume-at-startup, single or sharded); cmd/sbload drives it with a
// deterministic closed-loop mix of organic traffic and
// dictionary/focused attack submissions, reporting throughput and
// latency percentiles in benchmark format.
//
// # Token pipeline
//
// Serving tokenizes each message exactly once. Tokenizer.Stream
// builds a TokenStream — the message's distinct tokens in
// first-appearance order with occurrence counts, a total, and a
// length-prefixed digest — through a pooled per-message scratch
// arena, so steady-state tokenization costs a handful of allocations
// instead of a materialized []string per pipeline stage. Both stock
// backends implement StreamClassifier and StreamLearner over interned
// token IDs: each trained filter keeps a per-snapshot symbol table
// that clones cheaply for snapshot swaps and persists sorted, so
// stream-trained and string-trained filters save byte-identical
// databases. Every serving stage then consumes the same stream:
// Engine.Classify and the batch paths resolve the stream capability
// once per batch; a Guarded engine's vetting tokenizes each training
// candidate once and hands that one stream to the admitters
// (TokenFloodGate reads the distinct-token count in O(1),
// IncrementalRONI memoizes verdicts by stream digest and probes
// without re-tokenizing), to the Quarantine (whose swap-time reviews
// hand it back to the judge), and onward through LearnStream to the
// learner. The tokenizeonce analyzer fences the tokenizer's
// per-message entry points and TokenStream.Strings, so no stage can
// quietly reintroduce a second tokenization or rematerialize the
// slice.
//
// # Observability
//
// The daemon is inspectable in production without touching its hot
// paths. MetricsRegistry is a stdlib-only metrics registry — lock-free
// atomic counters, gauges, and fixed-bucket histograms, plus
// scrape-time sampled instruments for values that live under other
// structs' locks (the RONI probe budget, quarantine depth) — rendered
// in Prometheus text exposition format (v0.0.4). One registry is
// shared across the layers: the engine registers classify/batch/learn
// latency histograms, per-label verdict counters, and a generation
// gauge (per-shard labels in sharded mode); the admitters register
// their budget, memo, and quarantine accounting; the HTTP front-end
// registers per-route request counters, status classes, latency
// histograms, and learn-queue depth — and serves the whole registry at
// GET /metrics. ParseMetricsText parses the exposition back (the load
// generator scrapes before and after a run and cross-checks its
// client-observed percentiles against the server's own histograms via
// HistogramSnapshot.Sub and Quantile). DecisionTracer is the second
// surface: a bounded ring of sampled per-message lifecycle events —
// classify verdict, admission decision, quarantine hold and release,
// learn, snapshot publish — each stamped with the serving generation
// and a monotonic timestamp, sampled deterministically by token-stream
// digest so one message's whole lifecycle samples coherently across
// layers; GET /trace replays the ring as NDJSON. The statscomplete
// analyzer extends to these instruments: a registered metric field a
// Stats/Snapshot method never reads is a lint error, so /stats and
// /metrics cannot silently disagree. Instrumentation adds zero
// allocations to the classify hot path (pinned by benchmark), and a
// nil registry or tracer is a working no-op, so every layer
// instruments unconditionally. GET /healthz reports readiness
// (generation, resume state, learn-queue saturation) and flips to 503
// while the daemon sheds learn traffic; cmd/sbserved wires it all up
// behind -metrics and -pprof flags.
//
// # Static analysis
//
// The serving and admission invariants described above are enforced
// at lint time by a project-specific analyzer suite,
// internal/analysis, with eight analyzers. Four are intraprocedural:
// snapshotonce (one snapshot load per decision), statscomplete (every
// atomic counter surfaces in Stats), ctxdrain (drain loops honor
// context cancellation) and tokenizeonce (tokenize-once message
// flow). Four are interprocedural, proved over a module-wide call
// graph with analyzer facts crossing package boundaries: admitflow
// (no call path reaches the engine's training surface or a backend's
// raw learners without passing through Guarded/Admitter), hookorder
// (a PrePublish/PostPublish hook never re-enters the publish path —
// Swap, publish, or Retrain* — which would deadlock inside the swap),
// facadeexport (every exported internal/engine and internal/admission
// capability is surfaced by this facade) and atomicfield (a field
// accessed with sync/atomic is never plainly read or written). The
// cmd/sbvet binary runs them standalone (go run ./cmd/sbvet ./...,
// which is make lint) or as a go vet backend
// (go vet -vettool=$(which sbvet) ./..., which is make lint-vettool),
// and CI fails on any finding. Intentional exceptions are annotated
// in the source with //sbvet:NAME directives (reload, nostat, drain,
// retokenize, unguarded, reentrant, nofacade, unatomic), each
// carrying a reason — for example the experiment layer's deliberate
// poison injection reads
//
//	f.LearnWeighted(attackMsg, true, n) //sbvet:unguarded the attack injection being measured
//
// Unknown directive names are themselves diagnostics, so a typo
// cannot silently waive a check.
//
// The layers, top to bottom:
//
//   - Classifier, Persistable, Cloner, Backend and Engine: the
//     backend-generic contract, the named-backend registry
//     ("sbayes", "graham"), and the snapshot-swapping concurrent
//     scoring service;
//   - Filter, the SpamBayes learner (Robinson token scores + Fisher
//     chi-square combining, ham/unsure/spam verdicts), and
//     GrahamFilter, the "A Plan for Spam" baseline — both satisfy
//     Classifier;
//   - the SpamBayes tokenizer, the email message model, and mbox
//     archive I/O;
//   - the synthetic corpus generator and attack lexicons that stand
//     in for the paper's TREC-2005 and Usenet data;
//   - the Causative Availability attacks (dictionary, focused,
//     optimal) and the two defenses (RONI — against any backend —
//     and dynamic thresholds);
//   - labeled corpora with sampling and cross-validation, serial and
//     parallel evaluation;
//   - the §2.1 deployment simulators (after-the-fact and online
//     at-delivery, periodic and incremental retraining, replicated
//     and chunked attack streams); and
//   - the experiment drivers that regenerate every table and figure,
//     including cross-backend attack transfer.
//
// See examples/ for runnable walkthroughs and cmd/subvert for the
// experiment harness.
package repro

import (
	"context"
	"io"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/engine"
	"repro/internal/eval"
	"repro/internal/experiments"
	"repro/internal/graham"
	"repro/internal/lexicon"
	"repro/internal/mail"
	"repro/internal/obs"
	"repro/internal/sbayes"
	"repro/internal/scenario"
	"repro/internal/serve"
	"repro/internal/stats"
	"repro/internal/textgen"
	"repro/internal/tokenize"
)

// ---- The backend-generic classifier API ----

// Classifier is the learner contract every backend implements:
// incremental Learn/Unlearn, Classify into ham/unsure/spam, and raw
// spam scores.
type Classifier = engine.Classifier

// Persistable is the optional capability of saving and restoring a
// trained database; both stock backends have it.
type Persistable = engine.Persistable

// Cloner is the optional capability of deep-copying the trained state
// into an independent classifier; both stock backends have it, and
// Engine.RetrainIncremental requires it.
type Cloner = engine.Cloner

// TokenClassifier is the optional capability of scoring a
// pre-tokenized message (a distinct-token set), so hot loops can
// tokenize a corpus once and re-score it many times.
type TokenClassifier = engine.TokenClassifier

// TokenLearner is the optional capability of training directly on a
// distinct-token set with a multiplicity; only backends whose
// training is per-message token presence can offer it.
type TokenLearner = engine.TokenLearner

// StreamClassifier is the optional capability of scoring a
// once-tokenized message (a TokenStream). The serving engine resolves
// it once per batch so one tokenization feeds score, vet, and learn;
// both stock backends have it.
type StreamClassifier = engine.StreamClassifier

// StreamLearner is the optional capability of training on (and
// unlearning) a TokenStream with a multiplicity; both stock backends
// have it, and it subsumes TokenLearner for backends whose training
// weighs occurrence counts.
type StreamLearner = engine.StreamLearner

// Tokenizing is the optional capability of exposing the tokenizer the
// classifier trains and scores with, so callers can pre-tokenize
// corpora consistently with the backend.
type Tokenizing = engine.Tokenizing

// Backend is one registered learner implementation.
type Backend = engine.Backend

// ClassifierFactory constructs a fresh classifier; admitters use one
// to build probe filters.
type ClassifierFactory = engine.Factory

// Backends returns the registered backend names ("graham", "sbayes").
func Backends() []string { return engine.Backends() }

// LookupBackend returns the named backend.
func LookupBackend(name string) (Backend, error) { return engine.Lookup(name) }

// RegisterBackend adds a backend to the registry Backends and
// LookupBackend consult; the stock backends register themselves.
func RegisterBackend(b Backend) { engine.Register(b) }

// NewClassifier constructs a fresh classifier for a backend name.
func NewClassifier(backend string) (Classifier, error) {
	b, err := engine.Lookup(backend)
	if err != nil {
		return nil, err
	}
	return b.New(), nil
}

// Engine is the zero-downtime scoring service over one classifier:
// worker-pool ClassifyBatch/ScoreBatch and single-message Classify
// against an atomically swappable snapshot, Retrain /
// RetrainIncremental / Swap to publish replacements while scoring
// continues, a buffered LearnStream for bulk loading, and
// verdict/latency/generation counters.
type Engine = engine.Engine

// EngineConfig tunes an Engine (name, workers, learn buffer).
type EngineConfig = engine.Config

// ClassifyResult is one message's verdict within a batch.
type ClassifyResult = engine.Result

// LabeledMessage is one training example flowing through an Engine's
// LearnStream.
type LabeledMessage = engine.Labeled

// EngineStats is a snapshot of an Engine's counters.
type EngineStats = engine.Stats

// NewEngine returns a scoring engine over any classifier.
func NewEngine(c Classifier, cfg EngineConfig) *Engine { return engine.New(c, cfg) }

// NewEngineAt returns a scoring engine serving at a prior generation,
// as a resume does after a restart, so the generation line continues.
func NewEngineAt(c Classifier, gen uint64, cfg EngineConfig) *Engine {
	return engine.NewAt(c, gen, cfg)
}

// Sharded is one logical filter partitioned across N Engine shards
// routed by a recipient hash: batches are grouped by shard, fanned
// out concurrently, and restitched in input order; shards retrain
// independently (per-shard or all at once on each shard's own slice
// of the corpus), so poison trained into one user's shard degrades
// only the mailboxes routed there.
type Sharded = engine.Sharded

// ShardedConfig tunes a Sharded engine (name, per-shard workers,
// learn buffer, routing key).
type ShardedConfig = engine.ShardedConfig

// ShardedStats aggregates shard counters into a combined view plus
// the per-shard breakdown and per-shard generations.
type ShardedStats = engine.ShardedStats

// ShardKey routes a message to a shard.
type ShardKey = engine.ShardKey

// NewSharded partitions the serving layer across one Engine per
// classifier (a nil cfg.Key routes by recipient address hash).
func NewSharded(clfs []Classifier, cfg ShardedConfig) *Sharded { return engine.NewSharded(clfs, cfg) }

// RecipientShardKey is the default ShardKey: an FNV-1a hash of the
// message's canonicalized To address.
func RecipientShardKey(m *Message) uint64 { return engine.RecipientKey(m) }

// AddressShardKey hashes one canonicalized address the way the
// default recipient routing does, so tooling can predict a message's
// shard from its To address alone.
func AddressShardKey(addr string) uint64 { return engine.AddressKey(addr) }

// PartitionByShardKey splits a corpus into n per-shard corpora with
// the same routing a Sharded engine uses, so per-shard retraining
// trains each shard on exactly the mail it serves.
func PartitionByShardKey(c *Corpus, n int, key ShardKey) []*Corpus {
	return engine.PartitionByKey(c, n, key)
}

// ParallelFor runs fn(i) for i in [0, n) on a bounded worker pool,
// returning early if ctx is cancelled — the fan-out primitive the
// sharded engine and the parallel evaluators share.
func ParallelFor(ctx context.Context, n, workers int, fn func(i int)) error {
	return engine.ParallelFor(ctx, n, workers, fn)
}

// ---- Admission control (the training-data vetting pipeline) ----

// Admitter vets candidate training examples before they can influence
// a serving snapshot.
type Admitter = engine.Admitter

// AdmitVerdict is an admission decision's three-way outcome.
type AdmitVerdict = engine.AdmitVerdict

// Admission verdicts.
const (
	AdmitAccept     = engine.AdmitAccept
	AdmitQuarantine = engine.AdmitQuarantine
	AdmitReject     = engine.AdmitReject
)

// AdmitDecision is one vetted candidate's outcome (verdict + reason).
type AdmitDecision = engine.AdmitDecision

// AdmissionStats counts an engine's vetted training candidates
// (surfaced inside EngineStats; Vetted == Admitted+Quarantined+
// Rejected by construction).
type AdmissionStats = engine.AdmissionStats

// ThresholdSetter is the capability of replacing a classifier's
// decision thresholds after training — what DynamicThreshold.Refit
// installs refit cutoffs through at each snapshot swap.
type ThresholdSetter = engine.ThresholdSetter

// Guarded threads an admission policy through an Engine's training
// path (LearnStream, Retrain, RetrainIncremental) and runs publish
// hooks at every snapshot swap; scoring is never blocked.
type Guarded = engine.Guarded

// GuardedConfig wires the quarantine sink and the publish hooks.
type GuardedConfig = engine.GuardedConfig

// QuarantineSink receives examples an Admitter quarantined; a
// *Quarantine is the stock implementation.
type QuarantineSink = engine.QuarantineSink

// GuardedSharded is Guarded over a Sharded engine: one policy vets at
// the gateway, each decision counted against the destination shard.
type GuardedSharded = engine.GuardedSharded

// NewGuarded wraps an Engine with admission control.
func NewGuarded(e *Engine, admit Admitter, cfg GuardedConfig) *Guarded {
	return engine.NewGuarded(e, admit, cfg)
}

// NewGuardedSharded wraps a Sharded engine with admission control.
func NewGuardedSharded(s *Sharded, admit Admitter, cfg GuardedConfig) *GuardedSharded {
	return engine.NewGuardedSharded(s, admit, cfg)
}

// IncrementalRONI is the §5.1 defense run incrementally as messages
// arrive: clone-and-probe impact measurement under an amortized
// per-message budget, memoized by payload identity, deferring to
// quarantine when the budget is exhausted.
type IncrementalRONI = admission.IncrementalRONI

// IncrementalRONIConfig tunes the budgeted admitter.
type IncrementalRONIConfig = admission.IncrementalRONIConfig

// IncrementalRONIStats is the admitter's monotone accounting.
type IncrementalRONIStats = admission.IncrementalRONIStats

// NewIncrementalRONI builds the admitter over a calibration pool; on
// the same pool, seed and configuration its probe verdicts match a
// batch RONI pass verdict for verdict.
func NewIncrementalRONI(cfg IncrementalRONIConfig, pool *Corpus, factory func() Classifier, r *RNG) (*IncrementalRONI, error) {
	return admission.NewIncrementalRONI(cfg, pool, factory, r)
}

// DefaultIncrementalRONIConfig returns the standard amortization.
func DefaultIncrementalRONIConfig() IncrementalRONIConfig {
	return admission.DefaultIncrementalRONIConfig()
}

// TokenFloodGate is the structural pre-filter that rejects
// dictionary-style wide-vocabulary payloads on token count alone.
type TokenFloodGate = admission.TokenFloodGate

// FloodGateConfig tunes the gate.
type FloodGateConfig = admission.FloodGateConfig

// NewTokenFloodGate builds the gate.
func NewTokenFloodGate(cfg FloodGateConfig) *TokenFloodGate {
	return admission.NewTokenFloodGate(cfg)
}

// Quarantine buffers candidates an admitter deferred until a snapshot
// swap reviews them (it is a valid GuardedConfig.Quarantine sink).
type Quarantine = admission.Quarantine

// QuarantineConfig tunes the buffer (capacity, review expiry).
type QuarantineConfig = admission.QuarantineConfig

// QuarantineStats is the buffer's accounting.
type QuarantineStats = admission.QuarantineStats

// HeldMessage is one quarantined training candidate awaiting review
// at the next snapshot swap.
type HeldMessage = admission.HeldMessage

// NewQuarantine builds an empty buffer.
func NewQuarantine(cfg QuarantineConfig) *Quarantine { return admission.NewQuarantine(cfg) }

// AdmissionChain composes admitters in order; the first non-Accept
// decision wins.
type AdmissionChain = admission.Chain

// NewAdmissionChain composes the links in vetting order.
func NewAdmissionChain(links ...Admitter) *AdmissionChain { return admission.NewChain(links...) }

// SampledAdmitter consults its inner admitter for a deterministic
// fraction of candidates.
type SampledAdmitter = admission.Sampled

// NewSampledAdmitter wraps inner, consulting it with probability p.
func NewSampledAdmitter(inner Admitter, p float64, r *RNG) (*SampledAdmitter, error) {
	return admission.NewSampled(inner, p, r)
}

// ---- Snapshot persistence (the durable serving layer) ----

// SnapshotStore holds persisted snapshot envelopes keyed by logical
// name and generation; writes are atomic against crashes mid-save.
type SnapshotStore = engine.SnapshotStore

// SnapshotEnvelope is one decoded persisted snapshot: the backend
// registry name, the stamped generation, and the backend's payload.
type SnapshotEnvelope = engine.Envelope

// DirSnapshotStore is the filesystem SnapshotStore: one file per
// generation, written via temp-file + rename.
type DirSnapshotStore = engine.DirStore

// MemSnapshotStore is the in-memory SnapshotStore for tests and
// simulations.
type MemSnapshotStore = engine.MemStore

// ErrNoSnapshot reports a resume against a store with no generation
// that validates.
var ErrNoSnapshot = engine.ErrNoSnapshot

// NewDirSnapshotStore returns a filesystem store rooted at dir,
// creating the directory if needed.
func NewDirSnapshotStore(dir string) (*DirSnapshotStore, error) { return engine.NewDirStore(dir) }

// NewMemSnapshotStore returns an empty in-memory store.
func NewMemSnapshotStore() *MemSnapshotStore { return engine.NewMemStore() }

// SaveEngine persists e's current serving snapshot (classifier +
// generation, one consistent read) under name, stamped with the
// backend registry name resume reconstructs it through. Concurrent
// scoring is never blocked.
func SaveEngine(st SnapshotStore, name, backend string, e *Engine) (uint64, error) {
	return engine.SaveEngine(st, name, backend, e)
}

// ResumeEngine restores an Engine from name's newest valid
// generation, serving at that generation so the line continues
// across the restart. Invalid (corrupt, truncated, unknown-backend)
// generations are skipped; ErrNoSnapshot if none validates.
func ResumeEngine(st SnapshotStore, name string, cfg EngineConfig) (*Engine, SnapshotEnvelope, error) {
	return engine.ResumeEngine(st, name, cfg)
}

// LatestSnapshotEnvelope decodes name's newest valid persisted
// snapshot without constructing an engine, skipping generations that
// fail validation; ErrNoSnapshot if none validates.
func LatestSnapshotEnvelope(st SnapshotStore, name string) (SnapshotEnvelope, error) {
	return engine.LatestEnvelope(st, name)
}

// NewClassifierFromEnvelope reconstructs the trained classifier a
// persisted envelope carries, via the backend registry.
func NewClassifierFromEnvelope(env SnapshotEnvelope) (Classifier, error) {
	return engine.NewFromEnvelope(env)
}

// ResumeSharded restores a Sharded of shards engines, each shard from
// its own snapshot line's newest valid generation (see
// Sharded.SaveAll). Every shard must resume; the returned slice is
// each shard's resumed generation (compare with StaleShards).
func ResumeSharded(st SnapshotStore, shards int, cfg ShardedConfig) (*Sharded, []uint64, error) {
	return engine.ResumeAll(st, shards, cfg)
}

// StaleShards returns the shards whose resumed generation lags the
// newest across the partition — the lines that missed recent
// checkpoints.
func StaleShards(gens []uint64) []int { return engine.StaleShards(gens) }

// ShardSnapshotName is the store key of one shard's snapshot line
// within a Sharded named name.
func ShardSnapshotName(name string, shard int) string { return engine.ShardSnapshotName(name, shard) }

// PruneSnapshots removes all but the newest keep generations of name.
func PruneSnapshots(st SnapshotStore, name string, keep int) ([]uint64, error) {
	return engine.Prune(st, name, keep)
}

// DecodeSnapshotEnvelope parses and validates an encoded snapshot
// envelope (magic, version, checksum, exact framing).
func DecodeSnapshotEnvelope(data []byte) (SnapshotEnvelope, error) {
	return engine.DecodeEnvelope(data)
}

// AdmissionStatePersister is the capability of carrying admitter or
// quarantine state across a restart (Quarantine, IncrementalRONI, and
// AdmissionChain implement it); SaveGuarded rides the state in a
// sidecar envelope next to the classifier snapshot.
type AdmissionStatePersister = engine.AdmissionStatePersister

// SaveGuarded persists g's serving snapshot plus an admission sidecar
// (quarantine contents, probe budget, memoized verdicts) at the same
// generation, closing the crash-amnesty hole: a restart can no longer
// free held mail or refill an exhausted probe bucket.
func SaveGuarded(st SnapshotStore, name, backend string, g *Guarded) (uint64, error) {
	return engine.SaveGuarded(st, name, backend, g)
}

// ResumeGuarded restores a guarded engine from name's newest valid
// generation, loading any admission sidecar saved with it into the
// freshly wired guard — held mail stays held, spent budget stays
// spent.
func ResumeGuarded(st SnapshotStore, name string, cfg EngineConfig, admit Admitter, gcfg GuardedConfig) (*Guarded, SnapshotEnvelope, error) {
	return engine.ResumeGuarded(st, name, cfg, admit, gcfg)
}

// LoadAdmissionState restores g's admitter and quarantine sink from
// name's admission sidecar at generation gen; false (and no error)
// when that generation has no sidecar.
func LoadAdmissionState(st SnapshotStore, name string, gen uint64, g *Guarded) (bool, error) {
	return engine.LoadAdmissionState(st, name, gen, g)
}

// AdmissionSnapshotName is the store key of a guarded engine's
// admission sidecar line ("<name>.admission").
func AdmissionSnapshotName(name string) string { return engine.AdmissionSnapshotName(name) }

// ---- Serving (the guarded HTTP front-end) ----

// HTTPServer is the network front-end over a guarded engine: an
// http.Handler exposing classify/score (single and NDJSON batch),
// admission-guarded learn with bounded-queue load shedding (503 +
// Retry-After when the training path saturates; scoring never
// blocks), admin flush/save/resume, stats and health endpoints.
type HTTPServer = serve.Server

// HTTPServerConfig tunes the front-end (learn queue depth and batch,
// inflight batch limit, shed Retry-After, snapshot store wiring).
type HTTPServerConfig = serve.Config

// HTTPServerStats is a snapshot of the front-end's own counters
// (queued/shed/trained/publishes), alongside the engine's.
type HTTPServerStats = serve.Stats

// NewHTTPServer serves one guarded engine. Close it when done.
func NewHTTPServer(g *Guarded, cfg HTTPServerConfig) *HTTPServer {
	return serve.NewSingle(g, cfg)
}

// NewHTTPServerSharded serves a guarded sharded fleet. Close it when
// done.
func NewHTTPServerSharded(g *GuardedSharded, cfg HTTPServerConfig) *HTTPServer {
	return serve.NewSharded(g, cfg)
}

// WireMessage is a Message on the wire: ordered headers plus body.
type WireMessage = serve.WireMessage

// WireHeader is one ordered header field on the wire.
type WireHeader = serve.WireHeader

// WireFromMail converts a Message to its wire form.
func WireFromMail(m *Message) WireMessage { return serve.WireFromMail(m) }

// ClassifyRequest is the classify/score request body.
type ClassifyRequest = serve.ClassifyRequest

// ClassifyResponse is one classification verdict on the wire.
type ClassifyResponse = serve.ClassifyResponse

// ScoreResponse is one raw-score response on the wire.
type ScoreResponse = serve.ScoreResponse

// LearnRequest is a labeled training submission.
type LearnRequest = serve.LearnRequest

// LearnResponse acknowledges an accepted (queued) submission.
type LearnResponse = serve.LearnResponse

// FlushResponse reports a deterministic drain of the learn queue.
type FlushResponse = serve.FlushResponse

// SaveResponse lists the generations a snapshot save persisted.
type SaveResponse = serve.SaveResponse

// ResumeResponse reports an in-place resume from the snapshot store.
type ResumeResponse = serve.ResumeResponse

// HealthResponse is the GET /healthz readiness report: "ok" or
// "degraded" (503, learn queue saturated and shedding — score-only).
type HealthResponse = serve.HealthResponse

// ErrorResponse is the JSON error body every endpoint shares.
type ErrorResponse = serve.ErrorResponse

// ---- Observability (metrics registry + decision tracing) ----

// MetricsRegistry is the stdlib-only metrics registry the daemon's
// layers share: named counter/gauge/histogram families with bounded
// label sets, lock-free on the hot path, rendered in Prometheus text
// exposition format (v0.0.4) by WriteText — what GET /metrics serves.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty registry. A nil *MetricsRegistry
// is a working no-op (instruments it vends never record), so layers
// instrument unconditionally.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// MetricLabel is one metric dimension (key="value"); series within a
// family are keyed by their canonical sorted label set.
type MetricLabel = obs.Label

// NewMetricLabel builds one label.
func NewMetricLabel(key, value string) MetricLabel { return obs.L(key, value) }

// MetricCounter is a lock-free monotone counter.
type MetricCounter = obs.Counter

// MetricGauge is a lock-free instantaneous value.
type MetricGauge = obs.Gauge

// MetricHistogram is a fixed-bucket cumulative histogram: lock-free
// atomic buckets, with the count derived from the buckets so the
// exposition is monotone by construction.
type MetricHistogram = obs.Histogram

// HistogramSnapshot is one consistent-enough read of a histogram,
// supporting interpolated Quantile and before/after Sub deltas.
type HistogramSnapshot = obs.HistogramSnapshot

// DefaultLatencyBuckets are the request-latency bucket bounds the
// serving instruments use (100µs through 10s).
var DefaultLatencyBuckets = obs.DefLatencyBuckets

// ParsedMetrics is a parsed Prometheus text exposition — sample
// values, family types, and reassembled validated histograms.
type ParsedMetrics = obs.ParsedMetrics

// ParseMetricsText parses a text exposition (a /metrics scrape) back
// into queryable form, validating histogram bucket monotonicity.
func ParseMetricsText(r io.Reader) (*ParsedMetrics, error) { return obs.ParseText(r) }

// DecisionTracer is the bounded ring of sampled per-message decision
// lifecycle events (classify, admit, hold, release, learn, publish),
// each stamped with generation and monotonic timestamp. Sampling is
// deterministic by token-stream digest, so one message's lifecycle
// samples coherently across layers. A nil *DecisionTracer never
// samples and never records.
type DecisionTracer = obs.Tracer

// NewDecisionTracer returns a tracer recording every every-th sampled
// lifecycle into a ring of the given capacity.
func NewDecisionTracer(capacity, every int) *DecisionTracer { return obs.NewTracer(capacity, every) }

// TraceEvent is one recorded lifecycle event — what GET /trace
// replays as NDJSON.
type TraceEvent = obs.TraceEvent

// TraceEventKind names one stage of a traced decision lifecycle.
type TraceEventKind = obs.TraceKind

// Trace lifecycle stages.
const (
	TraceClassify = obs.TraceClassify
	TraceAdmit    = obs.TraceAdmit
	TraceHold     = obs.TraceHold
	TraceRelease  = obs.TraceRelease
	TraceLearn    = obs.TraceLearn
	TracePublish  = obs.TracePublish
)

// ---- Filter (the SpamBayes learner) ----

// Filter is the SpamBayes classifier: a token-count database plus the
// Robinson/Fisher scoring rule with ham/unsure/spam thresholds.
type Filter = sbayes.Filter

// FilterOptions are the learner's tunable parameters.
type FilterOptions = sbayes.Options

// Label is the three-way verdict shared by every backend.
type Label = engine.Label

// Verdicts.
const (
	Ham    = engine.Ham
	Unsure = engine.Unsure
	Spam   = engine.Spam
)

// Clue is one token's contribution to a classification.
type Clue = sbayes.Clue

// DefaultFilterOptions returns the SpamBayes defaults used in the
// paper (x=0.5, s=0.45, 150 discriminators, θ0=0.15, θ1=0.9).
func DefaultFilterOptions() FilterOptions { return sbayes.DefaultOptions() }

// NewFilter returns an empty filter with default options and
// tokenizer.
func NewFilter() *Filter { return sbayes.NewDefault() }

// NewFilterWithOptions returns an empty filter with explicit options
// and tokenizer (nil tokenizer selects the default).
func NewFilterWithOptions(opts FilterOptions, tok *Tokenizer) *Filter {
	return sbayes.New(opts, tok)
}

// LoadFilter reads a filter database written by Filter.Save.
func LoadFilter(r io.Reader, opts FilterOptions, tok *Tokenizer) (*Filter, error) {
	return sbayes.Load(r, opts, tok)
}

// ---- GrahamFilter (the "A Plan for Spam" baseline) ----

// GrahamFilter is Paul Graham's 2002 classifier: clamped naive Bayes
// over the fifteen most interesting tokens with a binary verdict. It
// is the second registered backend and demonstrates attack transfer
// across learners.
type GrahamFilter = graham.Filter

// GrahamOptions are the Graham learner's tunable parameters.
type GrahamOptions = graham.Options

// DefaultGrahamOptions returns the essay's parameters.
func DefaultGrahamOptions() GrahamOptions { return graham.DefaultOptions() }

// NewGrahamFilter returns an empty Graham filter with essay defaults.
func NewGrahamFilter() *GrahamFilter { return graham.NewDefault() }

// NewGrahamFilterWithOptions returns an empty Graham filter with
// explicit options and tokenizer (nil tokenizer selects the default).
func NewGrahamFilterWithOptions(opts GrahamOptions, tok *Tokenizer) *GrahamFilter {
	return graham.New(opts, tok)
}

// ---- Tokenizer ----

// Tokenizer converts messages into SpamBayes token streams.
type Tokenizer = tokenize.Tokenizer

// TokenizerOptions configures a Tokenizer.
type TokenizerOptions = tokenize.Options

// NewTokenizer returns a tokenizer with the given options.
func NewTokenizer(opts TokenizerOptions) *Tokenizer { return tokenize.New(opts) }

// DefaultTokenizer returns the SpamBayes-equivalent tokenizer.
func DefaultTokenizer() *Tokenizer { return tokenize.Default() }

// DefaultTokenizerOptions returns the SpamBayes-equivalent
// configuration.
func DefaultTokenizerOptions() TokenizerOptions { return tokenize.DefaultOptions() }

// Token is one tokenizer output token.
type Token = tokenize.Token

// TokenStream is a message tokenized once: its distinct tokens in
// first-appearance order with occurrence counts, the total token
// count, and a digest keying memoized admission verdicts. Streams are
// immutable and flow through score, vet, and learn without
// re-tokenizing (see the package's Token pipeline section).
type TokenStream = tokenize.TokenStream

// Sym is an interned token identifier within one Symbols table.
type Sym = tokenize.Sym

// NoSym is the sentinel Sym for a token absent from a table.
const NoSym = tokenize.NoSym

// Symbols is an intern table mapping tokens to dense Sym ids; each
// trained filter keeps one per snapshot.
type Symbols = tokenize.Symbols

// NewSymbols returns an empty intern table.
func NewSymbols() *Symbols { return tokenize.NewSymbols() }

// StreamFromTokens builds a TokenStream from a raw token sequence —
// the bridge from legacy []string token paths into the stream
// pipeline.
func StreamFromTokens(stream []string) *TokenStream { return tokenize.StreamFromTokens(stream) }

// ---- Mail ----

// Message is a single email: ordered header plus body.
type Message = mail.Message

// Header is an ordered sequence of header fields.
type Header = mail.Header

// MboxReader reads messages from an mbox archive.
type MboxReader = mail.MboxReader

// MboxWriter writes messages to an mbox archive.
type MboxWriter = mail.MboxWriter

// NewMboxReader returns a reader over r.
func NewMboxReader(r io.Reader) *MboxReader { return mail.NewMboxReader(r) }

// NewMboxWriter returns a writer that appends messages to w.
func NewMboxWriter(w io.Writer) *MboxWriter { return mail.NewMboxWriter(w) }

// ParseMessage parses one RFC-822-style message.
func ParseMessage(r io.Reader) (*Message, error) { return mail.Parse(r) }

// ---- Corpus ----

// Corpus is an ordered collection of labeled messages.
type Corpus = corpus.Corpus

// Example is one labeled message.
type Example = corpus.Example

// Fold is one train/test epoch of a cross-validation.
type Fold = corpus.Fold

// NewCorpus builds a corpus from separate ham and spam slices.
func NewCorpus(ham, spam []*Message) *Corpus { return corpus.FromMessages(ham, spam) }

// LoadMboxPair reads a corpus written by Corpus.SaveMboxPair.
func LoadMboxPair(dir string) (*Corpus, error) { return corpus.LoadMboxPair(dir) }

// ---- Synthetic data (the TREC-2005 / Usenet substitution) ----

// Universe is the segmented synthetic vocabulary.
type Universe = textgen.Universe

// Generator produces synthetic ham, spam and Usenet text.
type Generator = textgen.Generator

// GeneratorConfig controls message-level generation.
type GeneratorConfig = textgen.Config

// UniverseConfig sets vocabulary segment sizes.
type UniverseConfig = textgen.UniverseConfig

// NewGenerator builds a full-scale generator (the default universe:
// 98,568-word standard dictionary, 90,000-word Usenet vocabulary).
func NewGenerator() (*Generator, error) {
	u, err := textgen.NewUniverse(textgen.DefaultUniverseConfig())
	if err != nil {
		return nil, err
	}
	return textgen.New(u, textgen.DefaultConfig())
}

// NewGeneratorWith builds a generator from explicit configurations.
func NewGeneratorWith(ucfg UniverseConfig, gcfg GeneratorConfig) (*Generator, error) {
	u, err := textgen.NewUniverse(ucfg)
	if err != nil {
		return nil, err
	}
	return textgen.New(u, gcfg)
}

// Lexicon is an ordered word list (an attack word source).
type Lexicon = lexicon.Lexicon

// AspellLexicon builds the synthetic standard dictionary (the GNU
// aspell stand-in) over a universe.
func AspellLexicon(u *Universe) *Lexicon { return lexicon.Aspell(u) }

// OptimalLexicon builds the whole-universe word source.
func OptimalLexicon(u *Universe) *Lexicon { return lexicon.Optimal(u) }

// UsenetLexicon samples a Usenet corpus from the generator and keeps
// its top-k words.
func UsenetLexicon(g *Generator, r *RNG, streamTokens, k int) *Lexicon {
	return lexicon.UsenetFromGenerator(g, r, streamTokens, k)
}

// ---- Attacks ----

// Attacker is a Causative attack against the training set.
type Attacker = core.Attacker

// ChunkedAttacker is the capability of splitting the attack payload
// across distinct emails (the §4.2 stealth variant).
type ChunkedAttacker = core.ChunkedAttacker

// DictionaryAttack is the indiscriminate attack of §3.2.
type DictionaryAttack = core.DictionaryAttack

// FocusedAttack is the targeted attack of §3.3.
type FocusedAttack = core.FocusedAttack

// Taxonomy places an attack in the §3.1 three-axis space.
type Taxonomy = core.Taxonomy

// NewDictionaryAttack builds a dictionary attack over a word source.
func NewDictionaryAttack(lex *Lexicon) *DictionaryAttack { return core.NewDictionaryAttack(lex) }

// NewOptimalAttack builds the §3.4 optimal attack simulation.
func NewOptimalAttack(u *Universe) *DictionaryAttack { return core.NewOptimalAttack(u) }

// NewFocusedAttack builds a focused attack on a target email with
// per-word guess probability p; headerPool supplies spam headers.
func NewFocusedAttack(target *Message, p float64, headerPool []*Message) (*FocusedAttack, error) {
	return core.NewFocusedAttack(target, p, headerPool)
}

// AttackSize converts an attack fraction into a message count
// (1% of 10,000 → 101, as in the paper).
func AttackSize(fraction float64, trainSize int) int {
	return core.AttackSize(fraction, trainSize)
}

// FeedbackAttacker is the capability of adapting attack volume to
// observed accept/bounce feedback.
type FeedbackAttacker = core.FeedbackAttacker

// AdaptiveAttacker wraps any attack with a dose controller: the dose
// multiplies while the training pipeline accepts the poison and backs
// off while it bounces it.
type AdaptiveAttacker = core.AdaptiveAttacker

// AdaptiveConfig tunes the dose controller.
type AdaptiveConfig = core.AdaptiveConfig

// NewAdaptiveAttacker wraps inner with a dose controller.
func NewAdaptiveAttacker(inner Attacker, cfg AdaptiveConfig) (*AdaptiveAttacker, error) {
	return core.NewAdaptiveAttacker(inner, cfg)
}

// DefaultAdaptiveConfig returns the standard controller (double on
// acceptance, halve on rejection, clamped to [1/8, 4] of the base).
func DefaultAdaptiveConfig() AdaptiveConfig { return core.DefaultAdaptiveConfig() }

// ---- Defenses ----

// RONI is the Reject On Negative Impact defense of §5.1.
type RONI = core.RONI

// RONIConfig parameterizes RONI.
type RONIConfig = core.RONIConfig

// RONIImpact is a query email's measured impact.
type RONIImpact = core.Impact

// DynamicThreshold is the §5.2 threshold defense.
type DynamicThreshold = core.DynamicThreshold

// DefaultRONIConfig returns the paper's RONI parameters.
func DefaultRONIConfig() RONIConfig { return core.DefaultRONIConfig() }

// NewRONI samples trial sets from pool and builds the evaluator over
// SpamBayes trial filters.
func NewRONI(cfg RONIConfig, pool *Corpus, opts FilterOptions, tok *Tokenizer, r *RNG) (*RONI, error) {
	return core.NewRONI(cfg, pool, opts, tok, r)
}

// NewRONIBackend is NewRONI with trial filters built by any backend
// factory (clone-and-train against an arbitrary learner).
func NewRONIBackend(cfg RONIConfig, pool *Corpus, newClassifier func() Classifier, r *RNG) (*RONI, error) {
	return core.NewRONIBackend(cfg, pool, newClassifier, r)
}

// ---- Evaluation ----

// Confusion counts verdicts by true class.
type Confusion = eval.Confusion

// TrainFilter trains a fresh SpamBayes filter on a corpus.
func TrainFilter(train *Corpus, opts FilterOptions, tok *Tokenizer) *Filter {
	return eval.TrainFilter(train, opts, tok)
}

// TrainClassifier trains any classifier on a corpus in corpus order.
func TrainClassifier(c Classifier, train *Corpus) { eval.Train(c, train) }

// Evaluate scores a corpus under any classifier.
func Evaluate(c Classifier, test *Corpus) Confusion { return eval.Evaluate(c, test) }

// EvaluateBatch is Evaluate sharded across up to workers goroutines
// (GOMAXPROCS when workers <= 0).
func EvaluateBatch(c Classifier, test *Corpus, workers int) Confusion {
	return eval.EvaluateBatch(c, test, workers)
}

// ---- Experiments ----

// ExperimentConfig collects every experimental parameter.
type ExperimentConfig = experiments.Config

// ExperimentEnv is the shared experimental environment.
type ExperimentEnv = experiments.Env

// FullScaleConfig returns the paper's Table 1 parameters.
func FullScaleConfig() ExperimentConfig { return experiments.FullScale() }

// SmallScaleConfig returns a fast, structurally identical
// configuration.
func SmallScaleConfig() ExperimentConfig { return experiments.SmallScale() }

// NewExperimentEnv builds the environment for a configuration.
func NewExperimentEnv(cfg ExperimentConfig) (*ExperimentEnv, error) {
	return experiments.NewEnv(cfg)
}

// ---- Deployment simulation ----

// DeploymentConfig parameterizes the §2.1 weekly-retraining
// simulation (both the after-the-fact and the online variant).
type DeploymentConfig = scenario.Config

// DeploymentAdmissionConfig parameterizes the online deployment's
// inline vetting pipeline (DeploymentConfig.Admission); the zero
// value is a complete policy.
type DeploymentAdmissionConfig = scenario.AdmissionConfig

// AdmissionWeekReport is one week's inline-vetting outcome in an
// online deployment trace.
type AdmissionWeekReport = scenario.AdmissionWeek

// DeploymentResult is an after-the-fact simulation trace.
type DeploymentResult = scenario.Result

// OnlineDeploymentResult is an online simulation trace: per-week
// at-delivery confusions and serving-snapshot generations.
type OnlineDeploymentResult = scenario.OnlineResult

// RetrainMode selects how the online deployment rebuilds its serving
// snapshot each week.
type RetrainMode = scenario.RetrainMode

// Retraining strategies for the online deployment.
const (
	// RetrainPeriodic rebuilds from the full accumulated store.
	RetrainPeriodic = scenario.RetrainPeriodic
	// RetrainIncremental clones the serving snapshot and trains only
	// the week's new mail (requires a Cloner backend).
	RetrainIncremental = scenario.RetrainIncremental
)

// DefaultDeploymentConfig returns a small office-sized deployment.
func DefaultDeploymentConfig() DeploymentConfig { return scenario.DefaultConfig() }

// RunDeployment simulates an organization retraining its filter
// weekly, optionally under attack and with RONI scrubbing, measuring
// each week's filter on a fresh test corpus after the retrain.
func RunDeployment(g *Generator, cfg DeploymentConfig, r *RNG) (*DeploymentResult, error) {
	return scenario.Run(g, cfg, r)
}

// RunOnlineDeployment simulates the same organization one message at
// a time through a serving Engine: every verdict recorded is the one
// the user saw at delivery, and retrains are built in the background
// and published by atomic snapshot swap cfg.RetrainLag messages into
// the following week.
func RunOnlineDeployment(g *Generator, cfg DeploymentConfig, r *RNG) (*OnlineDeploymentResult, error) {
	return scenario.RunOnline(g, cfg, r)
}

// ---- Randomness ----

// RNG is the deterministic generator all randomness flows through.
type RNG = stats.RNG

// NewRNG returns a generator seeded from seed.
func NewRNG(seed uint64) *RNG { return stats.NewRNG(seed) }
