package repro

// Benchmarks: one per table/figure of the paper (regenerating the
// exhibit at the structurally identical small scale), the ablations
// called out in DESIGN.md §5, and micro-benchmarks of the hot paths.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// The per-exhibit benchmarks report the headline quantity of their
// figure as a custom metric so a regression in attack effectiveness
// is as visible as a regression in speed.

import (
	"context"
	"io"
	"sync"
	"testing"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/eval"
	"repro/internal/experiments"
	"repro/internal/graham"
	"repro/internal/obs"
	"repro/internal/sbayes"
	"repro/internal/scenario"
	"repro/internal/tokenize"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *experiments.Env
	benchEnvErr  error
)

// env returns the cached small-scale experiment environment.
func env(b *testing.B) *experiments.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		benchEnv, benchEnvErr = experiments.NewEnv(experiments.SmallScale())
	})
	if benchEnvErr != nil {
		b.Fatal(benchEnvErr)
	}
	return benchEnv
}

// ---- One benchmark per exhibit ----

// BenchmarkTable1Params regenerates the Table 1 parameter matrix.
func BenchmarkTable1Params(b *testing.B) {
	cfg := experiments.FullScale()
	for i := 0; i < b.N; i++ {
		if out := experiments.Table1(cfg); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig1DictionaryAttacks regenerates Figure 1 (optimal /
// Usenet / Aspell dictionary attacks under cross-validation).
func BenchmarkFig1DictionaryAttacks(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	var last *experiments.Fig1Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig1(e)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	pts := last.SeriesByName("optimal").Points
	b.ReportMetric(100*pts[len(pts)-1].Confusion.HamMisclassifiedRate(), "hamloss%@max")
}

// BenchmarkFig2FocusedKnowledge regenerates Figure 2 (focused attack
// vs. guess probability).
func BenchmarkFig2FocusedKnowledge(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	var last *experiments.Fig2Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig2(e)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(100*last.Cells[len(last.Cells)-1].ChangedRate(), "changed%@maxp")
}

// BenchmarkFig3FocusedVolume regenerates Figure 3 (focused attack vs.
// attack volume).
func BenchmarkFig3FocusedVolume(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	var last *experiments.Fig3Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig3(e)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(100*last.Points[len(last.Points)-1].MisclassifiedRate(), "targetloss%@max")
}

// BenchmarkFig4TokenShift regenerates Figure 4 (token scores before
// and after the focused attack).
func BenchmarkFig4TokenShift(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	var last *experiments.Fig4Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig4(e)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	inc, _ := last.Targets[0].IncludedDeltaSummary()
	b.ReportMetric(inc, "incTokenDelta")
}

// BenchmarkFig5DynamicThreshold regenerates Figure 5 (dynamic
// threshold defense vs. the dictionary attack).
func BenchmarkFig5DynamicThreshold(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	var last *experiments.Fig5Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig5(e)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	cells := last.Series[len(last.Series)-1].Cells
	b.ReportMetric(100*cells[len(cells)-1].Confusion.HamAsSpamRate(), "defendedham2spam%")
}

// BenchmarkRONIDefense regenerates the §5.1 RONI statistics.
func BenchmarkRONIDefense(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	var last *experiments.RONIResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunRONI(e)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(-last.BestAttack(), "minAttackImpact")
}

// BenchmarkTokenRatio regenerates the §4.2 token-volume check.
func BenchmarkTokenRatio(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	var last *experiments.TokenRatioResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTokenRatio(e)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Rows[0].Ratio(), "tokenRatio")
}

// BenchmarkExtInformedAttack regenerates the informed-attack
// extension sweep (§3.4 future work).
func BenchmarkExtInformedAttack(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	var last *experiments.InformedResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunInformed(e)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	cells := last.Cells
	b.ReportMetric(100*cells[len(cells)-1].Confusions[0].HamMisclassifiedRate(), "informedloss%@max")
}

// BenchmarkExtPseudospam regenerates the pseudospam extension sweep
// (§2.2 remark).
func BenchmarkExtPseudospam(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	var last *experiments.PseudospamResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunPseudospam(e)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(100*last.Points[len(last.Points)-1].NotBlockedRate(), "unblocked%@max")
}

// ---- Ablations (DESIGN.md §5) ----

// BenchmarkAblationWeightedLearn compares training n identical attack
// emails via weighted learning against the naive n-iteration loop.
func BenchmarkAblationWeightedLearn(b *testing.B) {
	e := env(b)
	attack := core.NewDictionaryAttack(e.Aspell).BuildAttack(e.RNG("bench"))
	tokens := e.Tok.TokenSet(attack)
	const copies = 100
	b.Run("weighted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f := sbayes.NewDefault()
			f.LearnTokens(tokens, true, copies)
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f := sbayes.NewDefault()
			for c := 0; c < copies; c++ {
				f.LearnTokens(tokens, true, 1)
			}
		}
	})
}

// BenchmarkAblationRONIUnlearn compares the unlearn-based RONI impact
// measurement against retraining each trial filter from scratch.
func BenchmarkAblationRONIUnlearn(b *testing.B) {
	e := env(b)
	r := e.RNG("roni-ablation")
	cfg := core.DefaultRONIConfig()
	d, err := core.NewRONI(cfg, e.Pool, sbayes.DefaultOptions(), e.Tok, r)
	if err != nil {
		b.Fatal(err)
	}
	q := e.Gen.SpamMessage(r)
	b.Run("unlearn", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d.MeasureImpact(q, true)
		}
	})
	b.Run("retrain", func(b *testing.B) {
		// Retrain-from-scratch equivalent: rebuild the trial filters
		// for every query.
		for i := 0; i < b.N; i++ {
			d2, err := core.NewRONI(cfg, e.Pool, sbayes.DefaultOptions(), e.Tok, r.Clone())
			if err != nil {
				b.Fatal(err)
			}
			d2.MeasureImpact(q, true)
		}
	})
}

// BenchmarkBaselineGrahamVsSpamBayes measures the same dictionary
// attack against the Graham (2002) baseline combiner and the
// SpamBayes learner, reporting each one's ham loss at a 10% dose —
// the dose-response gap documented in internal/graham.
func BenchmarkBaselineGrahamVsSpamBayes(b *testing.B) {
	e := env(b)
	r := e.RNG("graham-bench")
	train := e.Gen.Corpus(r, 200, 200)
	probes := make([]*Message, 40)
	for i := range probes {
		probes[i] = e.Gen.HamMessage(r)
	}
	attack := core.NewDictionaryAttack(e.Optimal)
	attackMsg := attack.BuildAttack(r)
	n := core.AttackSize(0.10, train.Len())

	b.Run("spambayes", func(b *testing.B) {
		var loss float64
		for i := 0; i < b.N; i++ {
			f := eval.TrainFilter(train, sbayes.DefaultOptions(), e.Tok)
			f.LearnWeighted(attackMsg, true, n)
			flipped := 0
			for _, m := range probes {
				if l, _ := f.Classify(m); l != sbayes.Ham {
					flipped++
				}
			}
			loss = 100 * float64(flipped) / float64(len(probes))
		}
		b.ReportMetric(loss, "hamloss%")
	})
	b.Run("graham", func(b *testing.B) {
		var loss float64
		for i := 0; i < b.N; i++ {
			f := graham.NewDefault()
			for _, ex := range train.Examples {
				f.Learn(ex.Msg, ex.Spam)
			}
			f.LearnWeighted(attackMsg, true, n)
			flipped := 0
			for _, m := range probes {
				if spam, _ := f.IsSpam(m); spam {
					flipped++
				}
			}
			loss = 100 * float64(flipped) / float64(len(probes))
		}
		b.ReportMetric(loss, "hamloss%")
	})
}

// BenchmarkAblationChunkedDictionary compares the paper's replicated
// dictionary attack (whole dictionary in every email) against the
// stealthier chunked variant (dictionary split across the emails) at
// the same message count, reporting each variant's damage.
func BenchmarkAblationChunkedDictionary(b *testing.B) {
	e := env(b)
	r := e.RNG("chunk-ablation")
	train := e.Gen.Corpus(r, 200, 200)
	base := eval.TrainFilter(train, sbayes.DefaultOptions(), e.Tok)
	probes := make([][]string, 40)
	for i := range probes {
		probes[i] = e.Tok.TokenSet(e.Gen.HamMessage(r))
	}
	attack := core.NewDictionaryAttack(e.Optimal)
	const copies = 20
	damage := func(f *sbayes.Filter) float64 {
		lost := 0
		for _, p := range probes {
			if l, _ := f.ClassifyTokens(p); l != sbayes.Ham {
				lost++
			}
		}
		return 100 * float64(lost) / float64(len(probes))
	}
	b.Run("replicated", func(b *testing.B) {
		var last float64
		for i := 0; i < b.N; i++ {
			f := base.Clone()
			f.LearnWeighted(attack.BuildAttack(r), true, copies)
			last = damage(f)
		}
		b.ReportMetric(last, "hamloss%")
	})
	b.Run("chunked", func(b *testing.B) {
		var last float64
		for i := 0; i < b.N; i++ {
			f := base.Clone()
			for _, m := range attack.BuildChunked(copies) {
				f.Learn(m, true)
			}
			last = damage(f)
		}
		b.ReportMetric(last, "hamloss%")
	})
}

// BenchmarkAblationDiscriminators sweeps the δ(E) cap: SpamBayes'
// 150 versus smaller and unbounded variants.
func BenchmarkAblationDiscriminators(b *testing.B) {
	e := env(b)
	r := e.RNG("disc-ablation")
	train := e.Gen.Corpus(r, 200, 200)
	probes := make([][]string, 50)
	for i := range probes {
		probes[i] = e.Tok.TokenSet(e.Gen.HamMessage(r))
	}
	for _, cap := range []int{10, 50, 150, 10000} {
		opts := sbayes.DefaultOptions()
		opts.MaxDiscriminators = cap
		f := eval.TrainFilter(train, opts, e.Tok)
		b.Run(itoa(cap), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f.ScoreTokens(probes[i%len(probes)])
			}
		})
	}
}

// BenchmarkAblationTokenizer compares tokenizer variants (the paper
// notes tokenization is the main difference between SpamBayes,
// BogoFilter and SpamAssassin's learners).
func BenchmarkAblationTokenizer(b *testing.B) {
	e := env(b)
	r := e.RNG("tok-ablation")
	msgs := make([]*Message, 100)
	for i := range msgs {
		msgs[i] = e.Gen.Message(r, i%2 == 0)
	}
	variants := map[string]tokenize.Options{
		"default":    tokenize.DefaultOptions(),
		"no-headers": func() tokenize.Options { o := tokenize.DefaultOptions(); o.Headers = false; return o }(),
		"no-skip":    func() tokenize.Options { o := tokenize.DefaultOptions(); o.SkipTokens = false; return o }(),
		"received":   func() tokenize.Options { o := tokenize.DefaultOptions(); o.MineReceived = true; return o }(),
	}
	for name, opts := range variants {
		tok := tokenize.New(opts)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tok.TokenSet(msgs[i%len(msgs)])
			}
		})
	}
}

// BenchmarkScenarioDeployment runs the §2.1 weekly-retraining
// deployment simulation (attack + RONI scrubbing).
func BenchmarkScenarioDeployment(b *testing.B) {
	e := env(b)
	cfg := scenario.DefaultConfig()
	cfg.Weeks = 3
	cfg.InitialMailStore = 300
	cfg.MessagesPerWeek = 150
	cfg.TestSize = 80
	cfg.AttackStartWeek = 2
	cfg.AttackFraction = 0.05
	cfg.Attack = core.NewDictionaryAttack(e.Optimal)
	cfg.UseRONI = true
	b.ResetTimer()
	var last *scenario.Result
	for i := 0; i < b.N; i++ {
		res, err := scenario.Run(e.Gen, cfg, e.RNG("scenario-bench"))
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(100*last.FinalHamLoss(), "finalhamloss%")
}

// ---- Micro-benchmarks of the hot paths ----

// BenchmarkTokenizeMessage measures tokenizer throughput (MB/s) and
// per-message allocation. The stream sub-benchmark is the serving
// path: an interned TokenStream built through the pooled per-message
// scratch arena, so steady-state tokenization of familiar vocabulary
// allocates only the stream's own arrays. tokenset is the legacy
// []string materialization it replaced — the allocs/op ratio between
// the two is the tokenize-once pipeline's headline win.
func BenchmarkTokenizeMessage(b *testing.B) {
	e := env(b)
	m := e.Gen.HamMessage(e.RNG("micro-tok"))
	tok := tokenize.Default()
	b.Run("stream", func(b *testing.B) {
		b.SetBytes(int64(len(m.Body)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tok.Stream(m)
		}
	})
	b.Run("tokenset", func(b *testing.B) {
		b.SetBytes(int64(len(m.Body)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tok.TokenSet(m)
		}
	})
}

// BenchmarkLearnMessage measures training throughput.
func BenchmarkLearnMessage(b *testing.B) {
	e := env(b)
	r := e.RNG("micro-learn")
	msgs := make([][]string, 200)
	for i := range msgs {
		msgs[i] = e.Tok.TokenSet(e.Gen.Message(r, i%2 == 0))
	}
	f := sbayes.NewDefault()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.LearnTokens(msgs[i%len(msgs)], i%2 == 0, 1)
	}
}

// BenchmarkClassifyMessage measures classification throughput on a
// trained filter.
func BenchmarkClassifyMessage(b *testing.B) {
	e := env(b)
	r := e.RNG("micro-classify")
	f := eval.TrainFilter(e.Gen.Corpus(r, 300, 300), sbayes.DefaultOptions(), e.Tok)
	probes := make([][]string, 100)
	for i := range probes {
		probes[i] = e.Tok.TokenSet(e.Gen.Message(r, i%2 == 0))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.ClassifyTokens(probes[i%len(probes)])
	}
}

// BenchmarkClassifyBatch measures the engine's concurrent batch
// scoring at growing worker counts against the serial baseline
// (workers=1); the speedup at N workers is the ratio of ns/op.
func BenchmarkClassifyBatch(b *testing.B) {
	e := env(b)
	r := e.RNG("micro-batch")
	f := eval.TrainFilter(e.Gen.Corpus(r, 300, 300), sbayes.DefaultOptions(), e.Tok)
	msgs := make([]*Message, 512)
	for i := range msgs {
		msgs[i] = e.Gen.Message(r, i%2 == 0)
	}
	ctx := context.Background()
	for _, workers := range []int{1, 2, 4, 8} {
		eng := engine.New(f, engine.Config{Name: "bench", Workers: workers})
		b.Run("workers="+itoa(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.ClassifyBatch(ctx, msgs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardedClassifyBatch measures batch scoring through the
// hash-by-recipient sharded layer at growing shard counts against the
// single-engine baseline (shards=1), crossed with per-shard worker
// counts. Contention at high parallelism is the quantity under test:
// shards multiply throughput because each sub-batch runs against its
// own snapshot pointer and worker pool, so shards=4/workers=1 should
// score the batch at least twice as fast as shards=1/workers=1 on a
// multi-core runner.
func BenchmarkShardedClassifyBatch(b *testing.B) {
	e := env(b)
	r := e.RNG("micro-sharded")
	f := eval.TrainFilter(e.Gen.Corpus(r, 300, 300), sbayes.DefaultOptions(), e.Tok)
	msgs := make([]*Message, 512)
	for i := range msgs {
		msgs[i] = e.Gen.Message(r, i%2 == 0)
		msgs[i].Header.Set("To", "user"+itoa(i%64)+"@corp.example")
	}
	ctx := context.Background()
	for _, shards := range []int{1, 2, 4, 8} {
		for _, workers := range []int{1, 2, 4} {
			// Shards share one trained read-only filter: batch scoring
			// never mutates it, and identical shards isolate the routing
			// and fan-out cost from training differences.
			clfs := make([]engine.Classifier, shards)
			for i := range clfs {
				clfs[i] = f
			}
			sh := engine.NewSharded(clfs, engine.ShardedConfig{Name: "bench", Workers: workers})
			b.Run("shards="+itoa(shards)+"/workers="+itoa(workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := sh.ClassifyBatch(ctx, msgs); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkGuardedLearnStream measures admission overhead on the
// learn path: bulk training through a Guarded engine whose chain is
// the scenario's stock pipeline (flood gate → budgeted incremental
// RONI), against the unguarded LearnStream baseline. The guard's cost
// per admitted example — gate tokenization plus the amortized probe
// drip — is the quantity the perf trajectory tracks.
func BenchmarkGuardedLearnStream(b *testing.B) {
	e := env(b)
	r := e.RNG("guarded-learn")
	pool := e.Gen.Corpus(r, 200, 200)
	stream := make([]engine.Labeled, 512)
	for i := range stream {
		stream[i] = engine.Labeled{Msg: e.Gen.Message(r, i%2 == 0), Spam: i%2 == 0}
	}
	ctx := context.Background()
	feed := func(b *testing.B, learn func() (chan<- engine.Labeled, func() (int, error))) {
		for i := 0; i < b.N; i++ {
			in, wait := learn()
			for _, ex := range stream {
				in <- ex
			}
			close(in)
			if _, err := wait(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("unguarded", func(b *testing.B) {
		eng := engine.New(sbayes.NewDefault(), engine.Config{Name: "bench"})
		feed(b, func() (chan<- engine.Labeled, func() (int, error)) { return eng.LearnStream(ctx) })
	})
	b.Run("guarded", func(b *testing.B) {
		roni, err := admission.NewIncrementalRONI(admission.IncrementalRONIConfig{
			RONI: core.RONIConfig{TrainSize: 10, ValSize: 20, Trials: 2, SpamPrevalence: 0.5, Threshold: 5.5},
		}, pool, func() engine.Classifier { return sbayes.NewDefault() }, e.RNG("guarded-learn-pool"))
		if err != nil {
			b.Fatal(err)
		}
		chain := admission.NewChain(admission.NewTokenFloodGate(admission.FloodGateConfig{}), roni)
		g := engine.NewGuarded(engine.New(sbayes.NewDefault(), engine.Config{Name: "bench"}), chain,
			engine.GuardedConfig{Quarantine: admission.NewQuarantine(admission.QuarantineConfig{})})
		feed(b, func() (chan<- engine.Labeled, func() (int, error)) { return g.LearnStream(ctx) })
		s := g.Stats().Admission
		b.ReportMetric(float64(s.Admitted)/float64(s.Vetted)*100, "admitted%")
	})
}

// BenchmarkIncrementalRONIAdmit measures the admitter alone: the
// memoized replicated-payload fast path (one probe serves every
// copy), the deferred path (bucket empty, quarantine verdict), and a
// full probe per call (the cost the budget amortizes).
func BenchmarkIncrementalRONIAdmit(b *testing.B) {
	e := env(b)
	pool := e.Gen.Corpus(e.RNG("roni-admit-pool"), 200, 200)
	cfg := admission.IncrementalRONIConfig{
		RONI: core.RONIConfig{TrainSize: 10, ValSize: 20, Trials: 2, SpamPrevalence: 0.5, Threshold: 5.5},
	}
	newAdmitter := func(b *testing.B, budget, burst float64) *admission.IncrementalRONI {
		c := cfg
		c.BudgetPerMessage, c.Burst = budget, burst
		a, err := admission.NewIncrementalRONI(c, pool, func() engine.Classifier { return sbayes.NewDefault() }, e.RNG("roni-admit"))
		if err != nil {
			b.Fatal(err)
		}
		return a
	}
	ctx := context.Background()
	payload := core.NewDictionaryAttack(e.Usenet).BuildAttack(e.RNG("roni-admit-atk"))
	organic := make([]*Message, 128)
	r := e.RNG("roni-admit-org")
	for i := range organic {
		organic[i] = e.Gen.Message(r, i%2 == 0)
	}
	b.Run("memoized", func(b *testing.B) {
		a := newAdmitter(b, 1, 8)
		a.Admit(ctx, payload, nil, true) // pay the one probe up front
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a.Admit(ctx, payload, nil, true)
		}
	})
	b.Run("deferred", func(b *testing.B) {
		a := newAdmitter(b, 0.0001, 0.5) // bucket never reaches a probe
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a.Admit(ctx, organic[i%len(organic)], nil, i%2 == 0)
		}
	})
	b.Run("probe", func(b *testing.B) {
		a := newAdmitter(b, 1, 1e12) // every distinct call probes
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// A fresh message each call: clone the rotation so the memo
			// never hits.
			m := &Message{Body: organic[i%len(organic)].Body}
			a.Admit(ctx, m, nil, i%2 == 0)
		}
	})
}

// BenchmarkServeWhileRetraining proves the snapshot-swap serving
// layer: batch scoring throughput with a continuous background
// Retrain loop publishing fresh snapshots, against the same engine
// idle. The two ns/op figures should be close — scoring never blocks
// on the rebuild — and the retraining run reports how many
// generations were published while it scored.
func BenchmarkServeWhileRetraining(b *testing.B) {
	e := env(b)
	r := e.RNG("serve-retrain")
	store := e.Gen.Corpus(r, 400, 400)
	backend, err := engine.Lookup("sbayes")
	if err != nil {
		b.Fatal(err)
	}
	msgs := make([]*Message, 256)
	for i := range msgs {
		msgs[i] = e.Gen.Message(r, i%2 == 0)
	}
	ctx := context.Background()
	newEngine := func() *engine.Engine {
		return engine.New(eval.TrainBackend(backend.New, store), engine.Config{Name: "serve", Workers: 4})
	}

	b.Run("idle", func(b *testing.B) {
		eng := newEngine()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.ClassifyBatch(ctx, msgs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("retraining", func(b *testing.B) {
		eng := newEngine()
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := eng.Retrain(ctx, backend.New, store); err != nil {
					b.Error(err)
					return
				}
			}
		}()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.ClassifyBatch(ctx, msgs); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		close(stop)
		wg.Wait()
		b.ReportMetric(float64(eng.Stats().Retrains)/float64(b.N), "retrains/op")
	})
}

// BenchmarkObsOverhead pins the cost of full instrumentation on the
// classify hot path: the same trained filter behind an engine wired
// to a live registry and an every-call tracer, against the bare
// engine. The benchmark fails outright if instrumentation adds even
// one allocation per classify — the lock-free instruments and the
// preallocated trace ring must write in place.
func BenchmarkObsOverhead(b *testing.B) {
	e := env(b)
	r := e.RNG("obs-overhead")
	f := eval.TrainFilter(e.Gen.Corpus(r, 300, 300), sbayes.DefaultOptions(), e.Tok)
	m := e.Gen.HamMessage(r)

	bare := engine.New(f, engine.Config{Name: "bare"})
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(1024, 1)
	inst := engine.New(f, engine.Config{Name: "inst", Obs: reg, Trace: tracer})

	// Warm both paths (interning and scratch pools settle on first
	// contact with the message), then pin the delta at zero.
	bare.Classify(m)
	inst.Classify(m)
	base := testing.AllocsPerRun(200, func() { bare.Classify(m) })
	with := testing.AllocsPerRun(200, func() { inst.Classify(m) })
	if extra := with - base; extra > 0 {
		b.Fatalf("instrumentation adds %.1f allocs/op on classify (bare %.1f, instrumented %.1f)", extra, base, with)
	}

	b.Run("bare", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bare.Classify(m)
		}
	})
	b.Run("instrumented", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			inst.Classify(m)
		}
	})
}

// BenchmarkCloneFilter measures the cost of branching a poisoned
// filter off a clean baseline.
func BenchmarkCloneFilter(b *testing.B) {
	e := env(b)
	f := eval.TrainFilter(e.Gen.Corpus(e.RNG("micro-clone"), 300, 300), sbayes.DefaultOptions(), e.Tok)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Clone()
	}
}

// BenchmarkFilterPersist measures database serialization.
func BenchmarkFilterPersist(b *testing.B) {
	e := env(b)
	f := eval.TrainFilter(e.Gen.Corpus(e.RNG("micro-persist"), 300, 300), sbayes.DefaultOptions(), e.Tok)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Save(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerateMessage measures synthetic corpus throughput.
func BenchmarkGenerateMessage(b *testing.B) {
	e := env(b)
	r := e.RNG("micro-gen")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Gen.Message(r, i%2 == 0)
	}
}

// BenchmarkBuildUsenetLexicon measures lexicon construction from a
// corpus sample.
func BenchmarkBuildUsenetLexicon(b *testing.B) {
	e := env(b)
	g := e.Gen
	for i := 0; i < b.N; i++ {
		lex := UsenetLexicon(g, e.RNG("micro-lex"), 100000, 900)
		if lex.Len() == 0 {
			b.Fatal("empty lexicon")
		}
	}
}

// itoa for sub-benchmark names.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
