// Dictionary attack walkthrough (§3.2 of the paper): poison a
// trained filter's training set with emails containing an entire
// dictionary, labeled spam, and watch legitimate mail disappear into
// the spam folder.
//
//	go run ./examples/dictionaryattack
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	gen, err := repro.NewGenerator()
	if err != nil {
		log.Fatal(err)
	}
	rng := repro.NewRNG(7)

	// The victim trains on a 4,000-message inbox, half spam.
	inbox := gen.Corpus(rng, 2000, 2000)
	filter := repro.TrainFilter(inbox, repro.DefaultFilterOptions(), nil)

	// Held-out legitimate mail, classified before the attack.
	fresh := gen.Corpus(rng, 400, 0)
	before := repro.Evaluate(filter, fresh)
	fmt.Printf("before attack: %.1f%% of fresh ham reaches the inbox\n",
		100*(1-before.HamMisclassifiedRate()))

	// The attacker builds one email containing the standard English
	// dictionary (98,568 words) — no header, per the contamination
	// assumption — and gets the victim to train n copies as spam.
	attack := repro.NewDictionaryAttack(repro.AspellLexicon(gen.Universe()))
	fmt.Printf("\nattack: %q (%s)\n", attack.Name(), attack.Taxonomy())

	for _, fraction := range []float64{0.001, 0.01, 0.05} {
		n := repro.AttackSize(fraction, inbox.Len())
		poisoned := filter.Clone()
		poisoned.LearnWeighted(attack.BuildAttack(rng), true, n) //sbvet:unguarded example: the dictionary attack being demonstrated
		conf := repro.Evaluate(poisoned, fresh)
		fmt.Printf("  %5.1f%% control (%4d emails): ham as spam %5.1f%%, ham lost (spam or unsure) %5.1f%%\n",
			100*fraction, n, 100*conf.HamAsSpamRate(), 100*conf.HamMisclassifiedRate())
	}

	// The paper's point: at 1% control the filter is unusable.
	n := repro.AttackSize(0.01, inbox.Len())
	poisoned := filter.Clone()
	poisoned.LearnWeighted(attack.BuildAttack(rng), true, n) //sbvet:unguarded example: the dictionary attack being demonstrated
	conf := repro.Evaluate(poisoned, fresh)
	fmt.Printf("\nwith %d attack emails (1%% of training), %.0f%% of legitimate mail is lost —\n",
		n, 100*conf.HamMisclassifiedRate())
	fmt.Println("the victim either wades through the spam folder or turns the filter off.")
}
