// Defenses walkthrough (§5 of the paper): RONI rejects dictionary
// attack emails before they reach training, and dynamic thresholds
// keep ham out of the spam folder even on a poisoned filter.
//
//	go run ./examples/defenses
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	gen, err := repro.NewGenerator()
	if err != nil {
		log.Fatal(err)
	}
	rng := repro.NewRNG(23)
	pool := gen.Corpus(rng, 1500, 1500)

	// ---- RONI: Reject On Negative Impact (§5.1) ----
	fmt.Println("== RONI defense ==")
	roni, err := repro.NewRONI(repro.DefaultRONIConfig(), pool, repro.DefaultFilterOptions(), nil, rng)
	if err != nil {
		log.Fatal(err)
	}

	attack := repro.NewDictionaryAttack(repro.AspellLexicon(gen.Universe()))
	attackMsg := attack.BuildAttack(rng)
	impact := roni.MeasureImpact(attackMsg, true)
	fmt.Printf("dictionary attack email: Δham-as-ham %+.1f on a %d-message validation set -> reject=%v\n",
		impact.HamAsHamDelta, repro.DefaultRONIConfig().ValSize, roni.ShouldReject(attackMsg, true))

	ordinary := gen.SpamMessage(rng)
	impact = roni.MeasureImpact(ordinary, true)
	fmt.Printf("ordinary spam email:     Δham-as-ham %+.1f -> reject=%v\n",
		impact.HamAsHamDelta, roni.ShouldReject(ordinary, true))

	// Integrated: scrub a candidate training batch.
	batch := gen.Corpus(rng, 10, 10)
	batch.Add(attackMsg, true)
	kept, rejected := roni.FilterCorpus(batch)
	fmt.Printf("scrubbing a %d-message training batch: kept %d, rejected %d\n\n",
		batch.Len(), kept.Len(), rejected.Len())

	// ---- Dynamic thresholds (§5.2) ----
	fmt.Println("== dynamic threshold defense ==")
	train := gen.Corpus(rng, 1000, 1000)
	n := repro.AttackSize(0.05, train.Len())
	poisonedTrain := train.Clone()
	poisoned := attack.BuildAttack(rng)
	for i := 0; i < n; i++ {
		poisonedTrain.Add(poisoned, true)
	}
	fmt.Printf("training set poisoned with %d dictionary attack emails (5%%)\n", n)

	fresh := gen.Corpus(rng, 300, 300)
	undefended := repro.TrainFilter(poisonedTrain, repro.DefaultFilterOptions(), nil)
	conf := repro.Evaluate(undefended, fresh)
	fmt.Printf("static thresholds (0.15, 0.90): ham as spam %5.1f%%, ham lost %5.1f%%\n",
		100*conf.HamAsSpamRate(), 100*conf.HamMisclassifiedRate())

	defense := repro.DynamicThreshold{Utility: 0.10}
	defended, t0, t1, err := defense.Train(poisonedTrain, repro.DefaultFilterOptions(), nil, rng)
	if err != nil {
		log.Fatal(err)
	}
	conf = repro.Evaluate(defended, fresh)
	fmt.Printf("fitted thresholds (%.3f, %.3f): ham as spam %5.1f%%, ham lost %5.1f%%\n",
		t0, t1, 100*conf.HamAsSpamRate(), 100*conf.HamMisclassifiedRate())
	fmt.Printf("side effect (as in the paper): %.1f%% of spam now lands in unsure\n",
		100*conf.SpamAsUnsureRate())
}
