// Focused attack walkthrough (§3.3 of the paper): a malicious
// contractor wants the victim to never see a competitor's bid email.
// Knowing (part of) what that email will say, the attacker sends spam
// containing those words; once the victim's filter retrains, the bid
// goes to the spam folder.
//
//	go run ./examples/focusedattack
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	gen, err := repro.NewGenerator()
	if err != nil {
		log.Fatal(err)
	}
	rng := repro.NewRNG(11)

	// The victim's filter, trained on a clean 4,000-message inbox.
	inbox := gen.Corpus(rng, 2000, 2000)
	filter := repro.TrainFilter(inbox, repro.DefaultFilterOptions(), nil)

	// The target: a legitimate email the victim is about to receive.
	target := gen.HamMessage(rng)
	label, score := filter.Classify(target)
	fmt.Printf("target email %q\n", target.Subject())
	fmt.Printf("before attack: classified %s (score %.4f)\n\n", label, score)

	// The attacker guesses each word of the target with probability
	// p and sends 300 attack emails containing the guessed words,
	// headers copied from ordinary spam (§4.1).
	for _, p := range []float64{0.1, 0.3, 0.5, 0.9} {
		attack, err := repro.NewFocusedAttack(target, p, inbox.Spam())
		if err != nil {
			log.Fatal(err)
		}
		poisoned := filter.Clone()
		attackMsg := attack.BuildAttack(rng)
		poisoned.LearnWeighted(attackMsg, true, 300) //sbvet:unguarded example: the focused attack being demonstrated
		label, score := poisoned.Classify(target)
		fmt.Printf("guessing %3.0f%% of tokens: target now %-6s (score %.4f)\n",
			100*p, label, score)
	}

	// Why it works: guessed tokens' spam scores jump, the rest drift
	// slightly down (Figure 4).
	attack, err := repro.NewFocusedAttack(target, 0.5, inbox.Spam())
	if err != nil {
		log.Fatal(err)
	}
	attackMsg := attack.BuildAttack(rng)
	poisoned := filter.Clone()
	poisoned.LearnWeighted(attackMsg, true, 300) //sbvet:unguarded example: the focused attack being demonstrated

	included := map[string]bool{}
	//sbvet:retokenize exhibit inspects the attack payload's token set once, off the serving path
	for _, tok := range repro.DefaultTokenizer().TokenSet(attackMsg) {
		included[tok] = true
	}
	fmt.Println("\ntoken score shifts (first few):")
	shown := 0
	for _, clue := range filter.Explain(target) {
		after := poisoned.TokenScore(clue.Token)
		tag := "excluded"
		if included[clue.Token] {
			tag = "INCLUDED"
		}
		fmt.Printf("  %-14s %s  f: %.3f -> %.3f\n", clue.Token, tag, clue.Score, after)
		if shown++; shown == 10 {
			break
		}
	}

	// Collateral damage is limited — other ham still gets through.
	other := gen.Corpus(rng, 200, 0)
	conf := repro.Evaluate(poisoned, other)
	fmt.Printf("\nunrelated fresh ham still classified ham: %.1f%% (the attack is surreptitious)\n",
		100*(1-conf.HamMisclassifiedRate()))
}
