// Serving walkthrough: the guarded engine on the network. The daemon
// surface (repro.HTTPServer, the library behind cmd/sbserved) exposes
// classification over HTTP while routing every learn submission
// through the admission guard — the admitflow analyzer proves there
// is no other training path — and carries the admission state through
// snapshot save/resume, so a restart cannot amnesty quarantined mail.
//
// The walkthrough runs the server in-process over a loopback
// listener and speaks plain HTTP to it:
//
//  1. bootstrap a classifier, wrap it in admission control
//     (flood gate + quarantine), and serve it;
//  2. classify organic mail and stream an NDJSON batch;
//  3. submit a learn candidate (202: queued behind the guard), flush
//     deterministically, and watch the generation advance;
//  4. submit a dictionary-style flood (admission rejects it — the
//     generation still advances, but nothing trains);
//  5. save a snapshot, train past it, resume in place: serving rolls
//     back to the saved state under a fresh generation.
//
// The learn path is bounded: a saturated queue (or a wedged admitter)
// sheds submissions with 503 + Retry-After while classification
// continues — run `make serve-bench` (cmd/sbload against a live
// cmd/sbserved) to see the shed path under real load.
//
//	go run ./examples/serving
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"repro"
)

func main() {
	gen, err := repro.NewGenerator()
	if err != nil {
		log.Fatal(err)
	}
	rng := repro.NewRNG(42)

	// Bootstrap: an operator-trusted local corpus trains the fresh
	// classifier before it serves; everything after goes through
	// admission.
	clf, err := repro.NewClassifier("sbayes")
	if err != nil {
		log.Fatal(err)
	}
	repro.TrainClassifier(clf, gen.Corpus(rng, 200, 200))

	// The guard: a structural flood gate vets each submission, a
	// quarantine holds deferrals for swap-time review.
	quarantine := repro.NewQuarantine(repro.QuarantineConfig{Capacity: 64})
	chain := repro.NewAdmissionChain(
		repro.NewTokenFloodGate(repro.FloodGateConfig{MaxDistinct: 2000}),
	)
	guarded := repro.NewGuarded(
		repro.NewEngine(clf, repro.EngineConfig{Name: "walkthrough"}),
		chain,
		repro.GuardedConfig{Quarantine: quarantine},
	)

	store := repro.NewMemSnapshotStore()
	srv := repro.NewHTTPServer(guarded, repro.HTTPServerConfig{
		Store: store, Name: "walkthrough", Backend: "sbayes",
	})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	// 2. Classify one message, then an NDJSON batch.
	var verdict repro.ClassifyResponse
	post(client, ts.URL+"/classify",
		repro.ClassifyRequest{Message: repro.WireFromMail(gen.SpamMessage(rng))}, &verdict)
	fmt.Printf("single classify: %s (score %.3f) at generation %d\n",
		verdict.Label, verdict.Score, verdict.Generation)

	var batch bytes.Buffer
	enc := json.NewEncoder(&batch)
	for i := 0; i < 4; i++ {
		enc.Encode(repro.WireFromMail(gen.Message(rng, i%2 == 0)))
	}
	resp, err := client.Post(ts.URL+"/classify/batch", "application/x-ndjson", &batch)
	if err != nil {
		log.Fatal(err)
	}
	lines := 0
	for dec := json.NewDecoder(resp.Body); dec.More(); {
		var r repro.ClassifyResponse
		if err := dec.Decode(&r); err != nil {
			log.Fatal(err)
		}
		lines++
	}
	resp.Body.Close()
	fmt.Printf("batch classify: %d verdicts streamed back\n", lines)

	// 3. Learn through the guard: 202 queues it, flush publishes.
	var learned repro.LearnResponse
	post(client, ts.URL+"/learn",
		repro.LearnRequest{Message: repro.WireFromMail(gen.SpamMessage(rng)), Spam: true}, &learned)
	var flushed repro.FlushResponse
	post(client, ts.URL+"/admin/flush", struct{}{}, &flushed)
	fmt.Printf("learn+flush: queued=%v, now serving generation %d\n",
		learned.Queued, flushed.Generation)

	// 4. A dictionary-style flood: thousands of distinct tokens. The
	// flood gate rejects it before it can touch the filter.
	words := make([]string, 3000)
	for i := range words {
		words[i] = fmt.Sprintf("flood%03d", i)
	}
	flood := &repro.Message{Body: strings.Join(words, " ")}
	post(client, ts.URL+"/learn", repro.LearnRequest{Message: repro.WireFromMail(flood), Spam: true}, nil)
	post(client, ts.URL+"/admin/flush", struct{}{}, &flushed)
	adm := guarded.Stats().Admission
	fmt.Printf("flood submission: admission vetted %d (admitted %d, rejected %d)\n",
		adm.Vetted, adm.Admitted, adm.Rejected)

	// 5. Save, train past the snapshot, resume in place.
	var saved repro.SaveResponse
	post(client, ts.URL+"/admin/save", struct{}{}, &saved)
	post(client, ts.URL+"/learn",
		repro.LearnRequest{Message: repro.WireFromMail(gen.HamMessage(rng)), Spam: false}, nil)
	post(client, ts.URL+"/admin/flush", struct{}{}, &flushed)
	var resumed repro.ResumeResponse
	post(client, ts.URL+"/admin/resume", struct{}{}, &resumed)
	fmt.Printf("save/resume: snapshot generation %d restored, serving generation %d (admission sidecar loaded: %v)\n",
		resumed.SnapshotGeneration, resumed.Generation, resumed.AdmissionLoaded)

	stats := srv.Stats()
	fmt.Printf("server counters: classified %d, trained %d, publishes %d, shed %d\n",
		stats.Classified, stats.Trained, stats.Publishes, stats.LearnShed)
}

// post sends v as JSON and decodes the response into out when non-nil.
func post(client *http.Client, url string, v any, out any) {
	body, err := json.Marshal(v)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			log.Fatalf("decoding %s: %v", url, err)
		}
	}
}
