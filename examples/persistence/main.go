// Durable serving walkthrough: the serving layer's snapshot
// persistence, end to end.
//
// A deployment that retrains continuously must also survive restarts
// — without losing the generations it published, and without
// silently resurrecting state an operator scrubbed. This example
// shows the three layers of that story:
//
//  1. One engine: save generation-stamped snapshots as retrains
//     publish, kill the engine, resume from the newest valid
//     generation — and watch resume fall back past a corrupted file
//     instead of failing (or worse, loading it: every snapshot is
//     checksummed).
//  2. A sharded fleet: every shard persists its own generation line;
//     after a crash that lost some shards' latest checkpoints, the
//     resumed fleet reports which shards are stale.
//  3. The online deployment simulator in durable mode: checkpoint
//     every retrain, crash mid-simulation, and verify users cannot
//     tell — then checkpoint too rarely and watch the restart rewind
//     the filter to an old generation.
//
//	go run ./examples/persistence
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/scenario"
)

func main() {
	gen, err := repro.NewGenerator()
	if err != nil {
		log.Fatal(err)
	}
	rng := repro.NewRNG(11)

	dir, err := os.MkdirTemp("", "repro-snapshots-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	st, err := repro.NewDirSnapshotStore(dir)
	if err != nil {
		log.Fatal(err)
	}

	// ---- 1. One engine's generation line, across a restart. ----
	week1 := gen.Corpus(rng, 400, 400)
	eng := repro.NewEngine(repro.TrainFilter(week1, repro.DefaultFilterOptions(), nil), repro.EngineConfig{Name: "prod"})
	if _, err := repro.SaveEngine(st, "prod", "sbayes", eng); err != nil {
		log.Fatal(err)
	}
	// Two more weekly retrains, each published and persisted.
	store := week1
	for week := 2; week <= 3; week++ {
		store.Append(gen.Corpus(rng, 200, 200))
		next := repro.TrainFilter(store, repro.DefaultFilterOptions(), nil)
		eng.Swap(next) //sbvet:unguarded example: checkpoint walkthrough publishes operator-built snapshots, no third-party training
		g, err := repro.SaveEngine(st, "prod", "sbayes", eng)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("week %d: published and persisted generation %d\n", week, g)
	}

	probe := gen.Corpus(rng.Split("probe"), 30, 30)
	before := repro.EvaluateBatch(eng.Classifier(), probe, 0)

	// "Crash": drop the engine, resume from disk.
	eng = nil
	resumed, env, err := repro.ResumeEngine(st, "prod", repro.EngineConfig{Name: "prod"})
	if err != nil {
		log.Fatal(err)
	}
	after := repro.EvaluateBatch(resumed.Classifier(), probe, 0)
	fmt.Printf("restart resumed %s generation %d; probe confusion identical: %v\n",
		env.Backend, env.Generation, before == after)

	// Corrupt the newest snapshot on disk: the checksum rejects it
	// and resume falls back one generation instead of serving it.
	data, err := st.Read("prod", env.Generation)
	if err != nil {
		log.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := st.Write("prod", env.Generation, data); err != nil {
		log.Fatal(err)
	}
	if _, fallback, err := repro.ResumeEngine(st, "prod", repro.EngineConfig{}); err != nil {
		log.Fatal(err)
	} else {
		fmt.Printf("newest snapshot corrupted on disk -> resume fell back to generation %d\n\n", fallback.Generation)
	}

	// ---- 2. A sharded fleet, each shard its own generation line. ----
	base := repro.TrainFilter(week1, repro.DefaultFilterOptions(), nil)
	clfs := make([]repro.Classifier, 4)
	for i := range clfs {
		clfs[i] = base.Clone()
	}
	fleet := repro.NewSharded(clfs, repro.ShardedConfig{Name: "fleet", Workers: 2})
	if _, err := fleet.SaveAll(st, "sbayes"); err != nil {
		log.Fatal(err)
	}
	// Shards 1 and 3 retrain once more and checkpoint; 0 and 2 crash
	// before their next checkpoint.
	for _, i := range []int{1, 3} {
		fleet.Swap(i, base.Clone()) //sbvet:unguarded example: checkpoint walkthrough publishes operator-built snapshots, no third-party training
		name := repro.ShardSnapshotName("fleet", i)
		if _, err := repro.SaveEngine(st, name, "sbayes", fleet.Shard(i)); err != nil {
			log.Fatal(err)
		}
	}
	fleet = nil
	restored, gens, err := repro.ResumeSharded(st, 4, repro.ShardedConfig{Name: "fleet", Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet resumed at per-shard generations %v; stale shards: %v\n\n",
		gens, repro.StaleShards(gens))
	_ = restored

	// ---- 3. The durable online deployment, crash included. ----
	cfg := scenario.DefaultConfig()
	cfg.Weeks = 6
	cfg.InitialMailStore = 1500
	cfg.MessagesPerWeek = 600
	cfg.RetrainLag = cfg.MessagesPerWeek / 3
	cfg.Attack = nil

	run := func(name string, mutate func(*scenario.Config)) *scenario.OnlineResult {
		c := cfg
		mutate(&c)
		res, err := scenario.RunOnline(gen, c, repro.NewRNG(99))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s ==\n%s\n", name, res.Render())
		return res
	}

	clean := run("no crash", func(c *scenario.Config) {})
	durable := run("crash at week 3, checkpoint every retrain", func(c *scenario.Config) {
		c.Checkpoints = repro.NewMemSnapshotStore()
		c.CrashAtWeek = 3
	})
	identical := true
	for i := range clean.Weeks {
		if clean.Weeks[i].Delivered != durable.Weeks[i].Delivered {
			identical = false
		}
	}
	fmt.Printf("every week's at-delivery confusion identical to the uncrashed run: %v\n\n", identical)

	run("crash at week 3, checkpointing only every 4th retrain", func(c *scenario.Config) {
		c.Checkpoints = repro.NewMemSnapshotStore()
		c.CheckpointEvery = 4
		c.CrashAtWeek = 3
	})

	fmt.Println("Read the gen columns: with a checkpoint per retrain the restart")
	fmt.Println("(the * week) resumes the very generation that was serving and")
	fmt.Println("users never notice. Checkpoint too rarely and the restart rewinds")
	fmt.Println("to the last persisted generation — the filter forgets retrains it")
	fmt.Println("already served, which is exactly the provenance gap an attacker")
	fmt.Println("who poisons between checkpoints would exploit.")
}
