// Sharded serving walkthrough: the serving layer scaled out the way
// a provider with a real user population runs it — one logical filter
// partitioned across N engine shards, routed by a hash of the
// recipient address, so every user's mail lands on (and trains)
// exactly one shard.
//
// Two properties fall out, and this example shows both:
//
//  1. Throughput: a batch is grouped by shard, fanned out across the
//     shards' independent snapshots and worker pools, and restitched
//     in input order — no shared snapshot pointer, no cross-shard
//     contention (BenchmarkShardedClassifyBatch measures the scaling).
//  2. Blast radius: a poisoning attack addressed to one victim (the
//     paper's §4.3 targeted setting) trains into only that user's
//     shard. The other shards keep serving clean verdicts, and the
//     per-shard stats/confusions make the containment visible — the
//     same dose spread across the population degrades everyone.
//
//	go run ./examples/sharded
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/core"
	"repro/internal/scenario"
)

func main() {
	gen, err := repro.NewGenerator()
	if err != nil {
		log.Fatal(err)
	}
	rng := repro.NewRNG(7)

	// ---- 1. The sharded engine, hands on. ----
	// Four shards over one clean training corpus: each shard gets its
	// own classifier (clones of one trained filter), and batches route
	// by recipient hash.
	train := gen.Corpus(rng, 800, 800)
	base := repro.TrainFilter(train, repro.DefaultFilterOptions(), nil)
	clfs := make([]repro.Classifier, 4)
	for i := range clfs {
		clfs[i] = base.Clone()
	}
	sh := repro.NewSharded(clfs, repro.ShardedConfig{Name: "walkthrough", Workers: 2})

	batch := gen.Corpus(rng, 64, 64)
	msgs := append(batch.Ham(), batch.Spam()...)
	for i, m := range msgs {
		m.Header.Set("To", fmt.Sprintf("user%d@corp.example", i%16))
	}
	results, err := sh.ClassifyBatch(context.Background(), msgs)
	if err != nil {
		log.Fatal(err)
	}
	spam := 0
	for _, res := range results {
		if res.Label == repro.Spam {
			spam++
		}
	}
	st := sh.Stats()
	fmt.Printf("scored %d messages across %d shards (%d flagged spam)\n",
		st.Combined.Classified, len(st.Shards), spam)
	for i, s := range st.Shards {
		fmt.Printf("  shard %d: %d classified, generation %d\n", i, s.Classified, st.Generations[i])
	}
	fmt.Println()

	// ---- 2. Targeted poison vs. spread poison, per-shard damage. ----
	cfg := scenario.DefaultConfig()
	cfg.Weeks = 6
	cfg.InitialMailStore = 1500
	cfg.MessagesPerWeek = 600
	cfg.AttackStartWeek = 3
	cfg.AttackFraction = 0.02
	cfg.RetrainLag = cfg.MessagesPerWeek / 3
	cfg.Shards = 4
	cfg.Recipients = 8
	attack := core.NewDictionaryAttack(repro.AspellLexicon(gen.Universe()))
	target := scenario.RecipientAddress(0)

	run := func(name string, mutate func(*scenario.Config)) {
		c := cfg
		mutate(&c)
		res, err := scenario.RunOnline(gen, c, repro.NewRNG(99))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s ==\n%s\n", name, res.Render())
	}

	run("clean sharded deployment", func(c *scenario.Config) {})
	run("dictionary attack aimed entirely at "+target, func(c *scenario.Config) {
		c.Attack = attack
		c.AttackRecipient = target
	})
	run("same dose spread across all 8 users", func(c *scenario.Config) {
		c.Attack = attack
	})

	fmt.Println("Read the per-shard tables: aimed at one user, the poison")
	fmt.Println("collapses a single shard (the * column) while the rest stay")
	fmt.Println("clean — sharding turned an organization-wide outage into one")
	fmt.Println("mailbox's outage. Spread across the population, the same dose")
	fmt.Println("degrades every shard at once.")
}
