// Quickstart: train a SpamBayes filter on a synthetic corpus and
// classify fresh messages — the five-minute tour of the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A generator produces the synthetic Enron-like corpus that
	// stands in for TREC 2005 (see DESIGN.md §3). The full-scale
	// universe has the paper's dictionary sizes; everything is
	// deterministic given the RNG seed.
	gen, err := repro.NewGenerator()
	if err != nil {
		log.Fatal(err)
	}
	rng := repro.NewRNG(42)

	// Generate and train on a 2,000-message inbox, half spam.
	inbox := gen.Corpus(rng, 1000, 1000)
	filter := repro.TrainFilter(inbox, repro.DefaultFilterOptions(), nil)
	nspam, nham := filter.Counts()
	fmt.Printf("trained on %d ham + %d spam (%d distinct tokens)\n\n",
		nham, nspam, filter.VocabSize())

	// Classify fresh mail the filter has never seen.
	fmt.Println("fresh messages:")
	for i := 0; i < 3; i++ {
		m := gen.HamMessage(rng)
		label, score := filter.Classify(m)
		fmt.Printf("  ham  %q -> %-6s (score %.4f)\n", m.Subject(), label, score)
	}
	for i := 0; i < 3; i++ {
		m := gen.SpamMessage(rng)
		label, score := filter.Classify(m)
		fmt.Printf("  spam %q -> %-6s (score %.4f)\n", m.Subject(), label, score)
	}

	// Inspect the evidence behind one verdict.
	m := gen.HamMessage(rng)
	fmt.Printf("\nstrongest clues for %q:\n", m.Subject())
	shown := 0
	for _, clue := range filter.Explain(m) {
		if !clue.Used {
			continue
		}
		fmt.Printf("  f(%q) = %.4f\n", clue.Token, clue.Score)
		if shown++; shown == 5 {
			break
		}
	}

	// Evaluate on a held-out test set.
	test := gen.Corpus(rng, 200, 200)
	conf := repro.Evaluate(filter, test)
	fmt.Printf("\nheld-out accuracy: %.1f%%  (%s)\n", 100*conf.Accuracy(), conf)
}
