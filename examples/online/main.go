// Online serving walkthrough: the §2.1 organization again, but seen
// the way its users see it. Instead of retraining at each week's end
// and then scoring a held-out test set (examples/retraining), every
// message — organic and attack alike — flows one at a time through a
// serving Engine and the verdict recorded is the one delivered to the
// user's inbox. Retraining happens the way a real deployment does it:
// the replacement filter is built in the background while mail keeps
// flowing, and goes live partway into the next week with one atomic
// snapshot swap — scoring never stops, and no verdict is ever computed
// against a half-trained filter.
//
// Watch the dictionary attack through this lens: the poisoned retrain
// built from week 3's contaminated store only starts hurting users
// after its mid-week swap in week 4 — and with incremental retraining
// (clone the serving snapshot, train just the new week's mail) the
// story is identical at a fraction of the rebuild cost.
//
//	go run ./examples/online
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/core"
	"repro/internal/scenario"
)

func main() {
	gen, err := repro.NewGenerator()
	if err != nil {
		log.Fatal(err)
	}

	base := scenario.DefaultConfig()
	base.Weeks = 6
	base.InitialMailStore = 1500
	base.MessagesPerWeek = 600
	base.AttackStartWeek = 3
	base.AttackFraction = 0.02
	// The weekly rebuild takes until "Tuesday": a third of the next
	// week's mail is still judged by the previous snapshot.
	base.RetrainLag = base.MessagesPerWeek / 3

	attack := core.NewDictionaryAttack(repro.AspellLexicon(gen.Universe()))

	run := func(name string, mutate func(*scenario.Config)) {
		cfg := base
		mutate(&cfg)
		res, err := scenario.RunOnline(gen, cfg, repro.NewRNG(99))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s ==\n%s\n", name, res.Render())
	}

	run("clean deployment", func(c *scenario.Config) {})
	run("under dictionary attack (2% of weekly mail from week 3)", func(c *scenario.Config) {
		c.Attack = attack
	})
	run("same attack, incremental retraining (clone + week's delta)", func(c *scenario.Config) {
		c.Attack = attack
		c.Retraining = scenario.RetrainIncremental
	})
	run("same attack split into 4 chunked payloads", func(c *scenario.Config) {
		c.Attack = attack
		c.AttackChunks = 4
	})
	run("same attack, RONI scrubbing before retraining", func(c *scenario.Config) {
		c.Attack = attack
		c.UseRONI = true
	})

	fmt.Println("The 'gen' column counts snapshot swaps: scoring never paused")
	fmt.Println("for any of them. Compare the attacked ham-lost column with")
	fmt.Println("examples/retraining — at-delivery damage lags the test-set")
	fmt.Println("view by the retrain latency, which is exactly the window a")
	fmt.Println("deployment has to catch the poisoning before users feel it.")
}
