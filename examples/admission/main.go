// Admission-control walkthrough: the training path is the attack
// surface, so guard it. The paper's defenses (RONI §5.1, dynamic
// thresholds §5.2) are evaluated as week-end batch steps; this example
// runs them the way an online deployment must — inline, message by
// message, under a compute budget.
//
// The pipeline (scenario.Config.Admission) chains three layers in
// front of the engine's training path:
//
//  1. TokenFloodGate — a structural pre-filter that rejects
//     dictionary-style wide-vocabulary payloads on token count alone,
//     free, label-blind;
//  2. IncrementalRONI — the paper's clone-and-probe impact
//     measurement, amortized: each arrival credits a fraction of a
//     probe, verdicts are memoized by payload identity (a replicated
//     attack costs one probe total), and candidates the budget cannot
//     cover are quarantined rather than admitted unvetted;
//  3. Quarantine — deferred candidates are re-vetted at each snapshot
//     swap with freshly granted budget and released into training or
//     dropped.
//
// At every swap the guard also refits the §5.2 dynamic thresholds on
// the replacement snapshot before it serves, so the cutoffs track the
// live score distribution, and the RONI calibration pool rolls forward
// with the trusted store.
//
//	go run ./examples/admission
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/core"
	"repro/internal/scenario"
)

func main() {
	gen, err := repro.NewGenerator()
	if err != nil {
		log.Fatal(err)
	}

	base := scenario.DefaultConfig()
	base.Weeks = 6
	base.InitialMailStore = 1500
	base.MessagesPerWeek = 600
	base.AttackStartWeek = 3
	base.AttackFraction = 0.02
	base.RetrainLag = base.MessagesPerWeek / 3

	attack := core.NewDictionaryAttack(repro.AspellLexicon(gen.Universe()))

	run := func(name string, mutate func(*scenario.Config)) *scenario.OnlineResult {
		cfg := base
		mutate(&cfg)
		res, err := scenario.RunOnline(gen, cfg, repro.NewRNG(7))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s ==\n%s\n", name, res.Render())
		return res
	}

	unguarded := run("unguarded under the dictionary attack", func(c *scenario.Config) {
		c.Attack = attack
	})
	guarded := run("guarded: the same attack against inline admission", func(c *scenario.Config) {
		c.Attack = attack
		c.Admission = &scenario.AdmissionConfig{}
	})

	probes, batch := 0, 0
	for _, w := range guarded.Weeks {
		probes += w.Admission.Probes
		if w.Admission.BatchProbeEquivalent > batch {
			batch = w.Admission.BatchProbeEquivalent
		}
	}
	fmt.Printf("equal dose, different outcomes: %.1f%% final ham loss unguarded, %.1f%% guarded.\n",
		100*unguarded.FinalHamLoss(), 100*guarded.FinalHamLoss())
	fmt.Printf("the whole run spent %d impact probes — one week-end batch RONI pass costs %d.\n\n",
		probes, batch)

	// A worthy adversary: the attacker observes how much of its poison
	// the pipeline accepted and scales the next week's dose. Against
	// the guard it goes quiet; without one it escalates.
	adaptive, err := core.NewAdaptiveAttacker(attack, core.DefaultAdaptiveConfig())
	if err != nil {
		log.Fatal(err)
	}
	run("adaptive attacker vs the guard (watch the atk-in column collapse)", func(c *scenario.Config) {
		c.Attack = adaptive
		c.AttackAdaptive = true
		c.Admission = &scenario.AdmissionConfig{}
	})

	// Pseudospam: the same payload delivered under ham training labels
	// slips past any defense keyed to "spam-labeled mail looks
	// harmful" — the impact-only batch RONI scores its ham-as-ham
	// delta as harmless. The flood gate reads structure, not labels.
	run("pseudospam: ham-labeled poison vs the guard", func(c *scenario.Config) {
		c.Attack = attack
		c.AttackLabelHam = true
		c.Admission = &scenario.AdmissionConfig{}
	})

	fmt.Println("The admission table reads left to right as the pipeline's story:")
	fmt.Println("adm/quar/rej split organic vs attack mail, probes against the")
	fmt.Println("batch-equivalent show the amortization, rel/drop are the swap-time")
	fmt.Println("quarantine reviews, and θ0/θ1 are the dynamic thresholds refit onto")
	fmt.Println("each snapshot before it went live.")
}
