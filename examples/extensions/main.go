// Extensions walkthrough: two attacks the paper sketches but does not
// evaluate — the informed (constrained-optimal) attack of §3.4 and
// the ham-labeled "pseudospam" attack of §2.2 — implemented on the
// same substrate.
//
//	go run ./examples/extensions
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/core"
)

func main() {
	gen, err := repro.NewGenerator()
	if err != nil {
		log.Fatal(err)
	}
	rng := repro.NewRNG(47)
	inbox := gen.Corpus(rng, 2000, 2000)
	filter := repro.TrainFilter(inbox, repro.DefaultFilterOptions(), nil)
	fresh := gen.Corpus(rng, 300, 0)

	// ---- Informed attack: knowledge beats volume (§3.4) ----
	fmt.Println("== informed (constrained-optimal) attack ==")
	// The attacker observes 500 emails from the victim's world and
	// budgets only 10,000 attack words — a ninth of the aspell
	// dictionary.
	sample := make([]*repro.Message, 500)
	for i := range sample {
		sample[i] = gen.HamMessage(rng)
	}
	informed, err := core.NewInformedAttack(sample, 10000)
	if err != nil {
		log.Fatal(err)
	}
	n := repro.AttackSize(0.01, inbox.Len())

	damage := func(attackMsg *repro.Message) float64 {
		poisoned := filter.Clone()
		poisoned.LearnWeighted(attackMsg, true, n) //sbvet:unguarded example: the pseudospam attack being demonstrated
		return repro.Evaluate(poisoned, fresh).HamMisclassifiedRate()
	}
	fmt.Printf("attack budget 10,000 words, %d attack emails (1%% control):\n", n)
	fmt.Printf("  informed dictionary:        %5.1f%% of ham lost\n",
		100*damage(informed.BuildAttack(rng)))
	full := repro.NewDictionaryAttack(repro.AspellLexicon(gen.Universe()))
	fmt.Printf("  full aspell (98,568 words): %5.1f%% of ham lost\n",
		100*damage(full.BuildAttack(rng)))
	fmt.Println("a tenth of the words buys most of the damage — \"a smaller dictionary")
	fmt.Println("of high-value features\" (§1).")

	// ---- Pseudospam attack: spam into the inbox (§2.2) ----
	fmt.Println("\n== pseudospam (ham-labeled) attack ==")
	future := make([]*repro.Message, 10)
	for i := range future {
		future[i] = gen.SpamMessage(rng)
	}
	blocked := 0
	for _, m := range future {
		if l, _ := filter.Classify(m); l == repro.Spam {
			blocked++
		}
	}
	fmt.Printf("before: filter blocks %d/10 of the attacker's future spam\n", blocked)

	attack, err := core.NewPseudospamAttack(future, inbox.Ham())
	if err != nil {
		log.Fatal(err)
	}
	poisoned := filter.Clone()
	// The benign-looking attack emails end up trained as HAM.
	poisoned.LearnWeighted(attack.BuildAttack(rng), false, repro.AttackSize(0.02, inbox.Len())) //sbvet:unguarded example: the pseudospam attack being demonstrated
	delivered := 0
	for _, m := range future {
		if l, _ := poisoned.Classify(m); l == repro.Ham {
			delivered++
		}
	}
	conf := repro.Evaluate(poisoned, fresh)
	fmt.Printf("after:  %d/10 delivered to the inbox; legitimate mail unharmed (%.1f%% ham kept)\n",
		delivered, 100*(1-conf.HamMisclassifiedRate()))
	fmt.Printf("taxonomy: %s (the paper's attacks are all Causative Availability)\n",
		attack.Taxonomy())
}
