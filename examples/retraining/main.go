// Deployment walkthrough (§2.1 of the paper): an organization trains
// one filter on everyone's mail and retrains weekly. Watch the
// dictionary attack poison the pipeline over the weeks — then put
// RONI in front of retraining and watch it hold.
//
//	go run ./examples/retraining
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/core"
	"repro/internal/scenario"
)

func main() {
	gen, err := repro.NewGenerator()
	if err != nil {
		log.Fatal(err)
	}

	base := scenario.DefaultConfig()
	base.Weeks = 6
	base.InitialMailStore = 1500
	base.MessagesPerWeek = 600
	base.TestSize = 300
	base.AttackStartWeek = 3
	base.AttackFraction = 0.02

	attack := core.NewDictionaryAttack(repro.AspellLexicon(gen.Universe()))

	run := func(name string, mutate func(*scenario.Config)) {
		cfg := base
		mutate(&cfg)
		res, err := scenario.Run(gen, cfg, repro.NewRNG(99))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s ==\n%s\n", name, res.Render())
	}

	run("clean deployment", func(c *scenario.Config) {})
	run("under dictionary attack (2% of weekly mail from week 3)", func(c *scenario.Config) {
		c.Attack = attack
	})
	run("same attack, RONI scrubbing before retraining", func(c *scenario.Config) {
		c.Attack = attack
		c.UseRONI = true
	})
}
