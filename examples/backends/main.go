// Backends: the interface-first API — construct learners by name
// from the backend registry, train them through the engine's bulk
// stream, score a corpus concurrently with ClassifyBatch, and watch
// the same dictionary attack poison every backend (at very different
// doses).
//
//	go run ./examples/backends
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	gen, err := repro.NewGenerator()
	if err != nil {
		log.Fatal(err)
	}
	rng := repro.NewRNG(42)

	// The registry knows every learner; a deployment picks one by
	// name, the attacks don't care which.
	fmt.Printf("registered backends: %v\n\n", repro.Backends())

	inbox := gen.Corpus(rng, 1000, 1000)
	test := gen.Corpus(rng, 200, 200)
	attack := repro.NewOptimalAttack(gen.Universe())
	attackMsg := attack.BuildAttack(rng)
	doses := []float64{0.001, 0.005, 0.02}

	// train builds a named backend and bulk-trains it through the
	// engine's buffered stream.
	train := func(name string) (repro.Classifier, *repro.Engine) {
		clf, err := repro.NewClassifier(name)
		if err != nil {
			log.Fatal(err)
		}
		eng := repro.NewEngine(clf, repro.EngineConfig{Name: name, Workers: 4})
		in, wait := eng.LearnStream(context.Background()) //sbvet:unguarded example: bulk-loading an operator-labeled corpus, the pre-admission baseline
		for _, ex := range inbox.Examples {
			in <- repro.LabeledMessage{Msg: ex.Msg, Spam: ex.Spam}
		}
		close(in)
		if _, err := wait(); err != nil {
			log.Fatal(err)
		}
		return clf, eng
	}

	for _, name := range repro.Backends() {
		clf, eng := train(name)
		baseline := repro.EvaluateBatch(clf, test, 4)
		fmt.Printf("%s: trained %d messages, baseline ham misclassified %.1f%%\n",
			name, eng.Stats().Learned, 100*baseline.HamMisclassifiedRate())

		// The same Causative Availability attack at growing doses —
		// a fresh filter per dose, whatever the learner.
		for _, dose := range doses {
			clf, _ := train(name)
			clf.LearnWeighted(attackMsg, true, repro.AttackSize(dose, inbox.Len())) //sbvet:unguarded example: the dictionary attack being demonstrated
			attacked := repro.EvaluateBatch(clf, test, 4)
			fmt.Printf("  %4.1f%% dictionary attack -> %5.1f%% ham misclassified\n",
				100*dose, 100*attacked.HamMisclassifiedRate())
		}
		fmt.Println()
	}

	fmt.Println("The attack poisons token statistics, so it transfers to any")
	fmt.Println("learner built on them. Graham's hard clamps and 15-token cap")
	fmt.Println("only buy a few multiples of dose over SpamBayes before the")
	fmt.Println("whole-universe dictionary overwhelms them too.")
}
